"""Accelerator-backend selection benchmark: measured wall time of the
three compaction executors across a value-size sweep, plus the cost
model's routing decision at each point.

Each sweep point builds the same 4-way overlapping merge workload
(shadowed versions + tombstones, ``compression="none"`` so the codec
does not mask the merge substrate) and times all three backends on it:

* ``cpu_v<N>`` — the streaming software merge
  (:func:`repro.lsm.compaction.compact`);
* ``fpga-sim_v<N>`` — the pipeline-sim device
  (:class:`repro.host.device.FcaeDevice`), which pays a functional
  marshal/DMA round-trip in this process;
* ``batch_v<N>`` — the LUDA-style vectorized batched merge
  (:class:`repro.host.batch_merge.BatchMergeEngine`).

``route_v<N>`` rows record what ``Options.accelerator = "auto"`` would
pick for that point (via :meth:`CompactionScheduler.pick_backend`'s cost
models) against the backend that actually measured fastest; the row's
``p50_us`` is the picked backend's measured time, so mis-routing shows
up directly as wall-clock regression.  ``tools/check_backends.py`` gates
the batch-vs-cpu speedup floor and the routing hit rate from the same
``--bench-json`` document.

Environment knobs: ``REPRO_BACKENDS_REPEAT`` / ``REPRO_BACKENDS_WARMUP``
override the per-point sample counts (CI quick mode).
"""

from __future__ import annotations

import os
import random
import time
from statistics import median

from repro.bench.common import ExperimentResult, scaled
from repro.fpga.resources import best_feasible_config
from repro.host.accelerator import make_backends
from repro.host.batch_merge import BatchMergeEngine
from repro.host.device import FcaeDevice
from repro.lsm.compaction import _BufferFile, compact, table_sources
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder, TableReader
from repro.lsm.version import CompactionSpec, FileMetaData
from repro.sim.cpu import CpuCostModel
from repro.util.comparator import BytewiseComparator

ICMP = InternalKeyComparator(BytewiseComparator())

#: (value_length, pairs per input table) — pairs shrink as values grow
#: so every point stays in the same wall-time budget while the byte
#: volume rises, which is exactly the regime that separates the
#: per-pair-bound streaming merge from the per-byte-bound batch path.
SWEEP = ((64, 1500), (256, 1200), (1024, 700), (2048, 450), (4096, 300))

DEFAULT_REPEAT = 5
DEFAULT_WARMUP = 1


def _options(value_len: int) -> Options:
    """Codec-neutral options with the sweep point's pair shape, so the
    routing cost models estimate with the workload's real geometry."""
    return Options(compression="none", bloom_bits_per_key=0,
                   sstable_size=4 << 20, key_length=16,
                   value_length=value_len)


def _merge_inputs(per_table: int, value_len: int, options: Options,
                  seed: int = 11) -> list[bytes]:
    """Four overlapping sorted runs with ~5% tombstones and shadowed
    versions (same shape as the hotpath merge workload)."""
    rng = random.Random(seed)
    universe = rng.sample(range(10 ** 9), per_table * 3)
    images = []
    sequence = 1
    for _ in range(4):
        picks = sorted(rng.sample(universe, per_table))
        dest = _BufferFile()
        builder = TableBuilder(options, dest, ICMP)
        for k in picks:
            kind = TYPE_DELETION if rng.random() < 0.05 else TYPE_VALUE
            value = (b"" if kind == TYPE_DELETION
                     else (f"val-{k:016d}-".encode()
                           * (value_len // 16 + 1))[:value_len])
            builder.add(encode_internal_key(f"{k:016d}".encode(),
                                            sequence, kind), value)
            sequence += 1
        builder.finish()
        images.append(bytes(dest.data))
    return images


def _sample(fn, repeat: int, warmup: int) -> tuple[float, float]:
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    p50 = median(times)
    p95 = times[min(len(times) - 1, int(round(0.95 * (len(times) - 1))))]
    return p50, p95


def _spec_for(images: list[bytes],
              readers: list[TableReader]) -> CompactionSpec:
    """A level-0 spec describing the workload, for the cost models."""
    files = []
    for number, (image, reader) in enumerate(zip(images, readers)):
        entries = list(reader)
        files.append(FileMetaData(number=number, file_size=len(image),
                                  smallest=entries[0][0],
                                  largest=entries[-1][0]))
    return CompactionSpec(level=0, inputs=files, parents=[],
                          reason="bench")


def run(scale: float = 1.0) -> ExperimentResult:
    repeat = int(os.environ.get("REPRO_BACKENDS_REPEAT", DEFAULT_REPEAT))
    warmup = int(os.environ.get("REPRO_BACKENDS_WARMUP", DEFAULT_WARMUP))

    # The batch path's numpy state lands in the title (the --bench-json
    # schema keeps title/columns/rows only) so tools/check_backends.py
    # can skip the vectorized-speedup floor on the numpy-less CI leg.
    vectorized = BatchMergeEngine(_options(64), ICMP).vectorized
    batch_mode = "vectorized" if vectorized else "pure-python fallback"
    result = ExperimentResult(
        name="backends",
        title="Accelerator backends: measured 4-way merge wall time and "
              f"cost-model routing (repeat={repeat}, warmup={warmup}, "
              f"batch={batch_mode})",
        columns=["bench", "p50_us", "p95_us", "mb_per_s", "note"],
    )

    config = best_feasible_config(4)

    for value_len, base_pairs in SWEEP:
        (per_table,) = scaled([base_pairs], scale)
        options = _options(value_len)
        images = _merge_inputs(per_table, value_len, options)
        input_bytes = sum(len(img) for img in images)
        readers = [TableReader(img, ICMP, options) for img in images]
        streams = [[r] for r in readers]
        spec = _spec_for(images, readers)

        device = FcaeDevice(config, options)
        batch = BatchMergeEngine(options, ICMP)

        runners = {
            "cpu": lambda: compact(table_sources(readers), options, ICMP,
                                   drop_deletions=True),
            "fpga-sim": lambda: device.compact(streams,
                                               drop_deletions=True),
            "batch": lambda: batch.compact(streams, drop_deletions=True),
        }
        measured = {}
        for backend, fn in runners.items():
            p50, p95 = _sample(fn, repeat, warmup)
            measured[backend] = p50
            result.add_row(f"{backend}_v{value_len}",
                           round(p50 * 1e6, 1), round(p95 * 1e6, 1),
                           round(input_bytes / p50 / 1e6, 2), "")

        backends = make_backends(device, options, ICMP, CpuCostModel())
        picked = min((b for b in backends.values() if b.can_run(spec)),
                     key=lambda b: b.estimate_seconds(spec)).name
        fastest = min(measured, key=measured.get)
        result.add_row(f"route_v{value_len}",
                       round(measured[picked] * 1e6, 1),
                       round(measured[picked] * 1e6, 1),
                       round(input_bytes / measured[picked] / 1e6, 2),
                       f"picked={picked};fastest={fastest}")

    result.notes.append(
        "numpy batch path: "
        + ("vectorized" if vectorized else "pure-python fallback"))
    result.notes.append(
        "gate with tools/check_regression.py --perf and "
        "tools/check_backends.py against "
        "benchmarks/baselines/BENCH_backends.json")
    return result
