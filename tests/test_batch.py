"""WriteBatch serialization and memtable application."""

import pytest

from repro.errors import CorruptionError, NotFoundError
from repro.lsm.batch import WriteBatch
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.memtable import MemTable
from repro.util.comparator import BytewiseComparator


class TestSerialization:
    def test_roundtrip(self):
        batch = WriteBatch()
        batch.put(b"k1", b"v1")
        batch.delete(b"k2")
        batch.put(b"k3", b"v3")
        data = batch.serialize(sequence=42)
        sequence, decoded = WriteBatch.deserialize(data)
        assert sequence == 42
        assert list(decoded) == list(batch)

    def test_empty_batch(self):
        batch = WriteBatch()
        sequence, decoded = WriteBatch.deserialize(batch.serialize(7))
        assert sequence == 7
        assert len(decoded) == 0

    def test_byte_size(self):
        batch = WriteBatch()
        batch.put(b"abc", b"12345")
        batch.delete(b"xy")
        assert batch.byte_size() == 3 + 5 + 2

    def test_clear(self):
        batch = WriteBatch()
        batch.put(b"a", b"b")
        batch.clear()
        assert len(batch) == 0

    def test_truncated_header(self):
        with pytest.raises(CorruptionError):
            WriteBatch.deserialize(b"short")

    def test_truncated_record(self):
        batch = WriteBatch()
        batch.put(b"key", b"value")
        data = batch.serialize(1)
        with pytest.raises(CorruptionError):
            WriteBatch.deserialize(data[:-3])

    def test_trailing_garbage(self):
        batch = WriteBatch()
        batch.put(b"key", b"value")
        with pytest.raises(CorruptionError):
            WriteBatch.deserialize(batch.serialize(1) + b"junk")

    def test_bad_record_type(self):
        batch = WriteBatch()
        batch.put(b"key", b"value")
        data = bytearray(batch.serialize(1))
        data[12] = 0x7  # record type byte
        with pytest.raises(CorruptionError):
            WriteBatch.deserialize(bytes(data))


class TestApply:
    def test_apply_assigns_consecutive_sequences(self):
        memtable = MemTable(InternalKeyComparator(BytewiseComparator()))
        batch = WriteBatch()
        batch.put(b"a", b"1")
        batch.put(b"b", b"2")
        batch.delete(b"a")
        next_seq = batch.apply_to_memtable(memtable, 10)
        assert next_seq == 13
        with pytest.raises(NotFoundError):
            memtable.get(b"a", 100)
        assert memtable.get(b"b", 100) == b"2"
        # Snapshot before the delete still sees the put.
        assert memtable.get(b"a", 11) == b"1"
