"""Sharded KV service: shard-owning dispatcher and TCP front-end.

:class:`KVService` owns ``N`` independent :class:`~repro.lsm.LsmDB`
shards under one root directory (``root/shard-00`` …), routes every
operation through a :class:`~repro.service.router.RangeRouter`, and
admits writes through a per-shard :class:`ShardGate`.  Each shard opens
in ``wal_sync="group"`` mode by default, so the server's concurrent
handler threads land in the shard's writer queue and a leader commits
them as one fsync — the per-shard write queue feeding group commit *is*
the DB's writer deque; no second queue layer exists to re-order or
buffer acknowledged data.

Backpressure: each gate watches the shard's ``lsm_write_stall_seconds``
histogram and compares stalled-time deltas against wall time.  When the
shard spends more than ``stall_threshold`` of its recent window stalled
(L0 at the slowdown/stop trigger), writes get ``BUSY`` instead of
queueing without bound — the client retries, and reads stay unaffected.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from repro.analysis import watchdog as lockwatch
from repro.errors import InvalidArgumentError, NotFoundError, ReproError
from repro.lsm import LsmDB, Options, WriteBatch
from repro.lsm.env import Env, OsEnv
from repro.lsm.internal import TYPE_VALUE
from repro.service import protocol
from repro.service.router import RangeRouter


class ShardGate:
    """Admission control from one shard's write-stall pressure."""

    def __init__(self, db: LsmDB, stall_threshold: float = 0.5,
                 window_seconds: float = 0.25):
        self._db = db
        self.stall_threshold = stall_threshold
        self.window_seconds = window_seconds
        self._lock = lockwatch.make_lock("service.gate")
        self._last_time = time.monotonic()
        self._last_stalled = db._m.stall_seconds.sum
        self._busy = False
        #: Writes refused with BUSY (monotone; surfaced in stats).
        self.rejections = 0

    def admit(self) -> bool:
        """True when a write may proceed; False → respond BUSY."""
        now = time.monotonic()
        with self._lock:
            elapsed = now - self._last_time
            if elapsed >= self.window_seconds:
                stalled = self._db._m.stall_seconds.sum
                self._busy = ((stalled - self._last_stalled)
                              > self.stall_threshold * elapsed)
                self._last_time = now
                self._last_stalled = stalled
            if self._busy:
                self.rejections += 1
            return not self._busy


class KVService:
    """Owns the shards; maps protocol requests to shard operations."""

    def __init__(self, root: str, num_shards: int = 4,
                 options: Optional[Options] = None,
                 env: Optional[Env] = None,
                 split_keys: Optional[Sequence[bytes]] = None,
                 stall_threshold: float = 0.5,
                 compaction_executor=None):
        if num_shards < 1:
            raise InvalidArgumentError("num_shards must be >= 1")
        self.root = root
        self.env = env or OsEnv()
        self.options = options or Options(wal_sync="group")
        if split_keys is not None:
            self.router = RangeRouter(split_keys)
            if self.router.num_shards != num_shards:
                raise InvalidArgumentError(
                    f"{len(split_keys)} split keys define "
                    f"{self.router.num_shards} shards, not {num_shards}")
        else:
            self.router = RangeRouter.uniform(num_shards)
        self.env.create_dir(root)
        self.shards = [
            LsmDB(f"{root}/shard-{i:02d}", self.options, env=self.env,
                  compaction_executor=compaction_executor)
            for i in range(num_shards)
        ]
        self.gates = [ShardGate(db, stall_threshold=stall_threshold)
                      for db in self.shards]
        self._closed = False

    # ------------------------------------------------------------ KV API

    def get(self, key: bytes) -> bytes:
        return self.shards[self.router.shard_for(key)].get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self.shards[self.router.shard_for(key)].put(key, value)

    def delete(self, key: bytes) -> None:
        self.shards[self.router.shard_for(key)].delete(key)

    def apply_batch(self, batch: WriteBatch) -> int:
        """Split a client batch by owning shard and commit each piece.

        Atomic per shard (each piece is one WAL record); cross-shard
        batches are not atomic as a whole — documented service contract.
        Returns the number of shards written.
        """
        pieces: dict[int, WriteBatch] = {}
        for value_type, key, value in batch:
            shard = self.router.shard_for(key)
            piece = pieces.setdefault(shard, WriteBatch())
            if value_type == TYPE_VALUE:
                piece.put(key, value)
            else:
                piece.delete(key)
        for shard, piece in sorted(pieces.items()):
            self.shards[shard].write(piece)
        return len(pieces)

    def stats(self) -> dict:
        shards = []
        for i, db in enumerate(self.shards):
            start, end = self.router.shard_range(i)
            shards.append({
                "shard": i,
                "start": start.hex() if start is not None else None,
                "end": end.hex() if end is not None else None,
                "levels": db.level_file_counts(),
                "writes": int(db._m.counters["writes"].value),
                "group_commits": db._m.group_commit_batches.count,
                "wal_syncs": int(db._m.wal_syncs.value),
                "stall_seconds": db._m.stall_seconds.sum,
                "busy_rejections": self.gates[i].rejections,
            })
        out = {
            "root": self.root,
            "num_shards": len(self.shards),
            "wal_sync": self.options.wal_sync,
            "shards": shards,
        }
        if lockwatch.enabled():
            out["lockwatch"] = lockwatch.get().report()
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for db in self.shards:
            db.close()

    def __enter__(self) -> "KVService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------- dispatching

    def dispatch(self, payload: bytes) -> bytes:
        """One request payload in, one response payload out."""
        try:
            op, body = protocol.decode_request(payload)
            return self._dispatch_op(op, body)
        except protocol.ProtocolError:
            raise  # connection-fatal; the server closes the socket
        except NotFoundError:
            return protocol.encode_response(protocol.NOT_FOUND)
        except ReproError as error:
            return protocol.encode_response(
                protocol.ERROR, str(error).encode())

    def _dispatch_op(self, op: int, body: bytes) -> bytes:
        if op == protocol.OP_PING:
            return protocol.encode_response(protocol.OK)
        if op == protocol.OP_GET:
            (key,) = protocol.decode_slices(body, 1)
            value = self.get(key)
            return protocol.encode_response(protocol.OK, value)
        if op == protocol.OP_STATS:
            stats = json.dumps(self.stats(), sort_keys=True).encode()
            return protocol.encode_response(protocol.OK, stats)
        # Writes pass the owning shard's gate first.
        if op == protocol.OP_PUT:
            key, value = protocol.decode_slices(body, 2)
            busy = self._check_gate([key])
            if busy is not None:
                return busy
            self.put(key, value)
            return protocol.encode_response(protocol.OK)
        if op == protocol.OP_DELETE:
            (key,) = protocol.decode_slices(body, 1)
            busy = self._check_gate([key])
            if busy is not None:
                return busy
            self.delete(key)
            return protocol.encode_response(protocol.OK)
        assert op == protocol.OP_BATCH
        try:
            _, batch = WriteBatch.deserialize(body)
        except ReproError as error:
            raise protocol.ProtocolError(
                f"bad batch body: {error}") from error
        busy = self._check_gate([key for _, key, _ in batch])
        if busy is not None:
            return busy
        self.apply_batch(batch)
        return protocol.encode_response(protocol.OK)

    def _check_gate(self, keys) -> Optional[bytes]:
        """BUSY response if any touched shard refuses admission."""
        for shard in {self.router.shard_for(key) for key in keys}:
            if not self.gates[shard].admit():
                return protocol.encode_response(
                    protocol.BUSY,
                    f"shard {shard} is stalling; retry later".encode())
        return None


class KVServer:
    """TCP front-end: accept loop + handler thread pool."""

    def __init__(self, service: KVService, host: str = "127.0.0.1",
                 port: int = 0, max_workers: int = 16):
        self.service = service
        self._listener = socket.create_server(
            (host, port), backlog=128, reuse_port=False)
        self.host, self.port = self._listener.getsockname()[:2]
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="kv-handler")
        self._accept_thread: Optional[threading.Thread] = None
        self._running = threading.Event()
        self._conns: set[socket.socket] = set()
        self._conns_lock = lockwatch.make_lock("service.conns")

    def start(self) -> None:
        self._running.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="kv-accept", daemon=True)
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Blocking variant for the CLI; ^C stops cleanly."""
        self.start()
        try:
            while self._running.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        if not self._running.is_set():
            return
        self._running.clear()
        self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        # Unblock handlers parked in recv() on idle connections.
        with self._conns_lock:
            for conn in list(self._conns):
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        self._pool.shutdown(wait=True)
        self.service.close()

    def __enter__(self) -> "KVServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            self._pool.submit(self._serve_connection, conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._conns_lock:
            self._conns.add(conn)
        try:
            self._serve_frames(conn)
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            conn.close()

    def _serve_frames(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while self._running.is_set():
            try:
                payload = protocol.read_frame(conn)
                if payload is None:
                    return
                response = self.service.dispatch(payload)
                protocol.write_frame(conn, response)
            except protocol.ProtocolError as error:
                try:
                    protocol.write_frame(conn, protocol.encode_response(
                        protocol.ERROR, str(error).encode()))
                except OSError:
                    pass
                return
            except OSError:
                return
