"""Sharded key-value service front-end over :mod:`repro.lsm`.

The network layer the paper's compaction engine sits behind in a real
deployment: a range-sharding router fans keys out across independent
``LsmDB`` shards, each opened in group-commit mode so concurrent client
connections amortize one fsync across many acknowledged writes, and a
per-shard admission gate turns write-stall pressure into ``BUSY``
responses instead of unbounded queueing.

Public entry points:

* :class:`repro.service.server.KVService` — shard owner + dispatcher.
* :class:`repro.service.server.KVServer` — TCP front-end.
* :class:`repro.service.client.KVClient` — blocking client.
* :class:`repro.service.router.RangeRouter` — key → shard mapping.
"""

from repro.service.client import KVClient
from repro.service.router import RangeRouter
from repro.service.server import KVServer, KVService

__all__ = ["KVClient", "KVServer", "KVService", "RangeRouter"]
