"""Block format: prefix compression, restart points, seek."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.lsm.block import Block, BlockBuilder
from repro.util.comparator import BytewiseComparator

CMP = BytewiseComparator()


def build(entries, restart_interval=16):
    builder = BlockBuilder(restart_interval)
    for key, value in entries:
        builder.add(key, value)
    return Block(builder.finish())


class TestBuilder:
    def test_empty_block_roundtrip(self):
        block = build([])
        assert list(block) == []

    def test_single_entry(self):
        block = build([(b"key", b"value")])
        assert list(block) == [(b"key", b"value")]

    def test_prefix_compression_saves_space(self):
        entries = [(f"commonprefix{i:06d}".encode(), b"v") for i in range(64)]
        small = BlockBuilder(16)
        for key, value in entries:
            small.add(key, value)
        uncompressed = BlockBuilder(1)  # restart every key = no sharing
        for key, value in entries:
            uncompressed.add(key, value)
        assert len(small.finish()) < len(uncompressed.finish())

    def test_size_estimate_tracks_content(self):
        builder = BlockBuilder()
        empty_estimate = builder.current_size_estimate()
        builder.add(b"abc", b"x" * 100)
        assert builder.current_size_estimate() > empty_estimate + 100

    def test_finish_twice_raises(self):
        builder = BlockBuilder()
        builder.add(b"a", b"1")
        builder.finish()
        with pytest.raises(ValueError):
            builder.finish()

    def test_add_after_finish_raises(self):
        builder = BlockBuilder()
        builder.finish()
        with pytest.raises(ValueError):
            builder.add(b"a", b"1")

    def test_reset_allows_reuse(self):
        builder = BlockBuilder()
        builder.add(b"a", b"1")
        builder.finish()
        builder.reset()
        builder.add(b"b", b"2")
        assert list(Block(builder.finish())) == [(b"b", b"2")]


class TestIteration:
    def test_order_preserved(self):
        entries = [(f"k{i:04d}".encode(), f"v{i}".encode())
                   for i in range(100)]
        assert list(build(entries)) == entries

    def test_restart_interval_one(self):
        entries = [(f"k{i:04d}".encode(), b"v") for i in range(20)]
        assert list(build(entries, restart_interval=1)) == entries

    def test_empty_values(self):
        entries = [(b"a", b""), (b"b", b"")]
        assert list(build(entries)) == entries


class TestSeek:
    ENTRIES = [(f"key{i:04d}".encode(), f"val{i}".encode())
               for i in range(0, 200, 2)]

    def test_seek_exact(self):
        block = build(self.ENTRIES)
        assert block.seek(b"key0100", CMP) == (b"key0100", b"val100")

    def test_seek_between_lands_on_next(self):
        block = build(self.ENTRIES)
        assert block.seek(b"key0101", CMP) == (b"key0102", b"val102")

    def test_seek_before_first(self):
        block = build(self.ENTRIES)
        assert block.seek(b"a", CMP) == self.ENTRIES[0]

    def test_seek_after_last(self):
        block = build(self.ENTRIES)
        assert block.seek(b"zzz", CMP) is None

    def test_iter_from_yields_suffix(self):
        block = build(self.ENTRIES)
        result = list(block.iter_from(b"key0190", CMP))
        assert result == self.ENTRIES[95:]


class TestCorruption:
    def test_too_small(self):
        with pytest.raises(CorruptionError):
            Block(b"xy")

    def test_zero_restarts(self):
        from repro.util.coding import encode_fixed32
        with pytest.raises(CorruptionError):
            Block(encode_fixed32(0))

    def test_restart_array_overrun(self):
        from repro.util.coding import encode_fixed32
        with pytest.raises(CorruptionError):
            Block(encode_fixed32(9999))


@settings(max_examples=40, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=20), min_size=1, max_size=80),
       st.integers(min_value=1, max_value=8))
def test_roundtrip_property(keys, restart_interval):
    entries = [(k, k[::-1]) for k in sorted(keys)]
    block = build(entries, restart_interval)
    assert list(block) == entries


@settings(max_examples=40, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=10), min_size=1, max_size=40),
       st.binary(min_size=1, max_size=10))
def test_seek_property(keys, probe):
    entries = [(k, b"v") for k in sorted(keys)]
    block = build(entries, 4)
    expected = min((k for k in keys if k >= probe), default=None)
    found = block.seek(probe, CMP)
    if expected is None:
        assert found is None
    else:
        assert found == (expected, b"v")
