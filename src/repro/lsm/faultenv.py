"""Fault-injecting storage environments for durability testing.

Two tools for making the WAL's fsync promises *testable*:

* :class:`CrashEnv` — an in-memory filesystem that models the three
  buffering tiers a real write traverses (userspace buffer → OS page
  cache → stable storage) and can :meth:`~CrashEnv.crash` at either
  boundary.  ``append`` lands in the userspace tier, ``flush`` promotes
  to the page-cache tier, ``sync`` to stable storage.  ``crash("process")``
  drops every open file's unflushed userspace bytes (a SIGKILL);
  ``crash("power")`` truncates every file to its last synced offset (a
  power loss).  After a crash all outstanding handles go stale — further
  writes through them raise, like writes in a dead process.
* :class:`SlowSyncEnv` — wraps any :class:`Env` and charges a modeled
  latency per ``sync`` (and optionally per ``flush``), so benchmarks see
  the fsync cost structure of a real device on top of the hermetic
  in-memory store.  This is what makes the group-commit throughput
  crossover measurable without real disks.

Limitations (documented, deliberate): directory operations (create,
delete, rename) are treated as immediately durable — modeling directory
journaling is out of scope, and the store's recovery path only depends
on file *contents* surviving per their sync state.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Iterable, Optional

from repro.errors import InvalidArgumentError, NotFoundError
from repro.lsm.env import Env, MemEnv, WritableFile

#: Crash kinds understood by :meth:`CrashEnv.crash`.
CRASH_KINDS = ("process", "power")


class _FileState:
    """One file's three-tier contents: ``data[:synced]`` is on stable
    storage, ``data[synced:flushed]`` in the OS page cache,
    ``data[flushed:]`` in the (volatile-on-process-death) userspace
    buffer of the writing handle."""

    __slots__ = ("data", "flushed", "synced")

    def __init__(self) -> None:
        self.data = bytearray()
        self.flushed = 0
        self.synced = 0


class _CrashWritableFile(WritableFile):
    def __init__(self, env: "CrashEnv", name: str, state: _FileState):
        self._env = env
        self._name = name
        self._state = state
        self._epoch = env._epoch
        self._closed = False

    def _check_live(self) -> None:
        if self._closed:
            raise ValueError(f"write to closed file {self._name}")
        if self._epoch != self._env._epoch:
            raise ValueError(
                f"stale handle to {self._name}: the environment crashed")

    def append(self, data: bytes) -> None:
        with self._env._lock:
            self._check_live()
            self._state.data += data

    def flush(self) -> None:
        with self._env._lock:
            self._check_live()
            self._state.flushed = len(self._state.data)

    def sync(self) -> None:
        with self._env._lock:
            self._check_live()
            state = self._state
            state.flushed = len(state.data)
            state.synced = len(state.data)
            self._env.syncs += 1

    def close(self) -> None:
        with self._env._lock:
            if self._closed or self._epoch != self._env._epoch:
                self._closed = True
                return
            # Closing drains the userspace buffer into the page cache
            # (what a real close does); it does NOT imply fsync.
            self._state.flushed = len(self._state.data)
            self._closed = True
            self._env._open_files.discard(self._name)

    @property
    def size(self) -> int:
        return len(self._state.data)


class CrashEnv(Env):
    """In-memory filesystem with injectable process/power crashes."""

    def __init__(self) -> None:
        self._files: dict[str, _FileState] = {}
        self._open_files: set[str] = set()
        self._lock = threading.RLock()
        self._epoch = 0
        #: Total ``sync()`` calls across all files.
        self.syncs = 0

    @staticmethod
    def _norm(name: str) -> str:
        return os.path.normpath(name)

    def crash(self, kind: str = "process") -> None:
        """Simulate a crash, truncating files to the surviving tier.

        ``"process"`` keeps everything flushed to the page cache (only
        open files' userspace buffers are lost); ``"power"`` keeps only
        synced bytes.  All outstanding handles become stale.
        """
        if kind not in CRASH_KINDS:
            raise InvalidArgumentError(
                f"unknown crash kind {kind!r} (expected one of "
                f"{', '.join(CRASH_KINDS)})")
        with self._lock:
            for state in self._files.values():
                keep = state.flushed if kind == "process" else state.synced
                del state.data[keep:]
                state.flushed = len(state.data)
                state.synced = min(state.synced, len(state.data))
            self._open_files.clear()
            self._epoch += 1

    def synced_size(self, name: str) -> int:
        """Bytes of ``name`` that would survive a power loss."""
        with self._lock:
            state = self._files.get(self._norm(name))
            if state is None:
                raise NotFoundError(name)
            return state.synced

    def new_writable_file(self, name: str) -> WritableFile:
        name = self._norm(name)
        with self._lock:
            state = self._files[name] = _FileState()
            self._open_files.add(name)
            return _CrashWritableFile(self, name, state)

    def new_appendable_file(self, name: str) -> WritableFile:
        name = self._norm(name)
        with self._lock:
            state = self._files.get(name)
            if state is None:
                state = self._files[name] = _FileState()
            self._open_files.add(name)
            return _CrashWritableFile(self, name, state)

    def read_file(self, name: str) -> bytes:
        name = self._norm(name)
        with self._lock:
            state = self._files.get(name)
            if state is None:
                raise NotFoundError(name)
            return bytes(state.data)

    def file_exists(self, name: str) -> bool:
        with self._lock:
            return self._norm(name) in self._files

    def file_size(self, name: str) -> int:
        name = self._norm(name)
        with self._lock:
            state = self._files.get(name)
            if state is None:
                raise NotFoundError(name)
            return len(state.data)

    def delete_file(self, name: str) -> None:
        name = self._norm(name)
        with self._lock:
            if name not in self._files:
                raise NotFoundError(name)
            del self._files[name]
            self._open_files.discard(name)

    def rename_file(self, src: str, dst: str) -> None:
        src, dst = self._norm(src), self._norm(dst)
        with self._lock:
            if src not in self._files:
                raise NotFoundError(src)
            self._files[dst] = self._files.pop(src)

    def list_dir(self, path: str) -> list[str]:
        prefix = self._norm(path) + os.sep
        seen = set()
        with self._lock:
            for name in self._files:
                if name.startswith(prefix):
                    rest = name[len(prefix):]
                    seen.add(rest.split(os.sep, 1)[0])
        return sorted(seen)

    def create_dir(self, path: str) -> None:
        pass


class _SlowSyncFile(WritableFile):
    def __init__(self, inner: WritableFile, env: "SlowSyncEnv"):
        self._inner = inner
        self._env = env

    def append(self, data: bytes) -> None:
        self._inner.append(data)

    def flush(self) -> None:
        if self._env.flush_latency > 0:
            time.sleep(self._env.flush_latency)
        self._inner.flush()

    def sync(self) -> None:
        if self._env.sync_latency > 0:
            time.sleep(self._env.sync_latency)
        self._inner.sync()
        self._env.syncs += 1

    def close(self) -> None:
        self._inner.close()

    @property
    def size(self) -> int:
        return self._inner.size


class SlowSyncEnv(Env):
    """Delegating wrapper that charges a modeled fsync latency.

    The default 1 ms per ``sync`` is the ballpark of a datacenter SSD's
    flush; it makes the throughput-vs-durability crossover of the WAL
    sync modes measurable on the hermetic in-memory store.
    """

    def __init__(self, inner: Optional[Env] = None,
                 sync_latency: float = 1e-3,
                 flush_latency: float = 0.0):
        self._inner = inner or MemEnv()
        self.sync_latency = sync_latency
        self.flush_latency = flush_latency
        #: Total charged ``sync()`` calls across all files.
        self.syncs = 0

    @property
    def inner(self) -> Env:
        return self._inner

    def new_writable_file(self, name: str) -> WritableFile:
        return _SlowSyncFile(self._inner.new_writable_file(name), self)

    def new_appendable_file(self, name: str) -> WritableFile:
        return _SlowSyncFile(self._inner.new_appendable_file(name), self)

    def read_file(self, name: str) -> bytes:
        return self._inner.read_file(name)

    def file_exists(self, name: str) -> bool:
        return self._inner.file_exists(name)

    def file_size(self, name: str) -> int:
        return self._inner.file_size(name)

    def delete_file(self, name: str) -> None:
        self._inner.delete_file(name)

    def rename_file(self, src: str, dst: str) -> None:
        self._inner.rename_file(src, dst)

    def list_dir(self, path: str) -> Iterable[str]:
        return self._inner.list_dir(path)

    def create_dir(self, path: str) -> None:
        self._inner.create_dir(path)
