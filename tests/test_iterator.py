"""Merging iterator: order, tie-breaking, exhaustion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.iterator import merging_iterator, take_while_prefix


def bytewise(a: bytes, b: bytes) -> int:
    return (a > b) - (a < b)


def kv(*keys):
    return [(k, b"v-" + k) for k in keys]


class TestMerging:
    def test_empty_sources(self):
        assert list(merging_iterator([], bytewise)) == []

    def test_single_source(self):
        entries = kv(b"a", b"b", b"c")
        assert list(merging_iterator([iter(entries)], bytewise)) == entries

    def test_two_disjoint(self):
        left = kv(b"a", b"c")
        right = kv(b"b", b"d")
        merged = list(merging_iterator([iter(left), iter(right)], bytewise))
        assert [k for k, _ in merged] == [b"a", b"b", b"c", b"d"]

    def test_interleaved_many(self):
        sources = [kv(*[f"{i:03d}{j}".encode() for i in range(50)])
                   for j in range(5)]
        merged = list(merging_iterator(map(iter, sources), bytewise))
        keys = [k for k, _ in merged]
        assert keys == sorted(keys)
        assert len(keys) == 250

    def test_tie_breaks_by_source_order(self):
        first = [(b"k", b"from-first")]
        second = [(b"k", b"from-second")]
        merged = list(merging_iterator([iter(first), iter(second)],
                                       bytewise))
        assert merged[0] == (b"k", b"from-first")
        assert merged[1] == (b"k", b"from-second")

    def test_exhausted_source_removed(self):
        short = kv(b"a")
        long = kv(b"b", b"c", b"d")
        merged = list(merging_iterator([iter(short), iter(long)], bytewise))
        assert len(merged) == 4

    def test_some_sources_empty(self):
        merged = list(merging_iterator(
            [iter([]), iter(kv(b"x")), iter([])], bytewise))
        assert merged == kv(b"x")


class TestTakeWhile:
    def test_stops_at_limit(self):
        entries = kv(b"a", b"b", b"c", b"d")
        taken = list(take_while_prefix(iter(entries), b"c", bytewise))
        assert [k for k, _ in taken] == [b"a", b"b"]

    def test_limit_before_everything(self):
        entries = kv(b"m")
        assert list(take_while_prefix(iter(entries), b"a", bytewise)) == []


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.lists(st.binary(min_size=1, max_size=6), max_size=30),
    max_size=5))
def test_merge_equals_sorted_property(source_keys):
    sources = [sorted(set(keys)) for keys in source_keys]
    expected = sorted(k for keys in sources for k in keys)
    merged = list(merging_iterator(
        [iter([(k, b"") for k in keys]) for keys in sources], bytewise))
    assert [k for k, _ in merged] == expected
