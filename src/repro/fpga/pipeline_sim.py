"""Item-granularity pipeline timing simulator.

The engine's modules run concurrently in hardware; this simulator
composes their per-pair service times (from :mod:`repro.fpga.cost_model`
and the module classes) into a kernel cycle count, honoring the
synchronization the paper describes:

* each input's Decoder runs ahead of the Comparer only as far as its
  key/value FIFO depth allows (a FIFO element is usable once, §V-C);
* a Comparer round needs the head key of *every* non-exhausted input;
* the value path is single-buffered: the winner's value moves through
  the Key-Value Transfer at ``V`` bytes/cycle and drains into the output
  buffer at ``output_buffer_width`` bytes/cycle before the next value may
  follow;
* the Data Block Encoder's key work runs parallel to the value drain;
* block flushes occupy the AXI writer at ``W_out`` bytes/cycle.

With the default ``output_buffer_width = 8`` this model reproduces the
paper's measured Table V within roughly -25%..+5% (EXPERIMENTS.md keeps
the per-cell comparison).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.cost_model import comparer_period


@dataclass
class _PairSpec:
    key_len: int
    value_len: int
    new_block: bool
    block_compressed_size: int


@dataclass
class TimingReport:
    """Cycle totals for one kernel run."""

    total_cycles: float = 0.0
    comparer_rounds: int = 0
    pairs_transferred: int = 0
    pairs_dropped: int = 0
    decoder_stall_cycles: float = 0.0   # comparer waiting on decoders
    value_bus_busy_cycles: float = 0.0
    writer_busy_cycles: float = 0.0
    input_bytes: int = 0
    output_bytes: int = 0
    #: decoder blocked because its KV FIFO had no free slot (§V-C
    #: backpressure; a FIFO element is usable once)
    decoder_backpressure_cycles: float = 0.0
    decoder_busy_cycles: float = 0.0
    comparer_busy_cycles: float = 0.0
    encoder_busy_cycles: float = 0.0
    #: per-input high-water KV-FIFO occupancy, in elements
    fifo_high_water: list[int] = field(default_factory=list)

    def kernel_seconds(self, config: FpgaConfig) -> float:
        return config.cycles_to_seconds(self.total_cycles)

    def utilization(self) -> dict[str, float]:
        """Busy fraction of each shared resource over the kernel run —
        a coarse occupancy profile of the pipeline."""
        if self.total_cycles <= 0:
            return {"value_bus": 0.0, "writer": 0.0, "decoder_stall": 0.0}
        return {
            "value_bus": self.value_bus_busy_cycles / self.total_cycles,
            "writer": self.writer_busy_cycles / self.total_cycles,
            "decoder_stall": self.decoder_stall_cycles / self.total_cycles,
        }

    def speed_mbps(self, config: FpgaConfig) -> float:
        """The paper's metric: input SSTable bytes / kernel time."""
        seconds = self.kernel_seconds(config)
        if seconds <= 0:
            return 0.0
        return self.input_bytes / seconds / 1e6


class _InputTimingState:
    """Decoder-side clock and FIFO occupancy for one input."""

    __slots__ = ("decoder_clock", "pending", "free_slots", "high_water")

    def __init__(self, fifo_depth: int) -> None:
        self.decoder_clock = 0.0
        #: ready times of decoded pairs sitting in the KV FIFO
        self.pending: deque[float] = deque()
        #: times at which FIFO slots became free; a decode consumes the
        #: earliest-freed slot, so a pair can never finish decoding into a
        #: slot before that slot was vacated.
        self.free_slots: deque[float] = deque([0.0] * fifo_depth)
        #: most elements ever resident in the KV FIFO
        self.high_water = 0


class PipelineTimer:
    """Drives the timing model; the engine (or a synthetic workload
    generator) feeds it decode and selection events in merge order.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) defaults to the
    process-wide registry when one is installed; :meth:`finalize` then
    publishes the run into the ``fpga_pipeline_*`` families."""

    def __init__(self, config: FpgaConfig, metrics=None):
        from repro import obs

        self.config = config
        self.metrics = (metrics if metrics is not None
                        else obs.current_registry())
        self._inputs = [_InputTimingState(config.kv_fifo_depth)
                        for _ in range(config.num_inputs)]
        self._t_comparer = 0.0
        self._t_value_bus = 0.0
        self._t_encoder = 0.0
        self._t_writer = 0.0
        self.report = TimingReport()

    # ------------------------------------------------------------------
    # Decoder side
    # ------------------------------------------------------------------

    def _decode_service(self, spec: _PairSpec) -> float:
        config = self.config
        if config.variant is PipelineVariant.FULL:
            cycles = spec.key_len + spec.value_len / config.value_width
        else:
            cycles = float(spec.key_len + spec.value_len)
        if spec.new_block:
            cycles += config.dram_read_latency
            if config.variant is PipelineVariant.BASIC:
                # Single read pointer: detour through the index block.
                cycles += 2 * config.dram_read_latency + 24
            stream_width = (config.w_in
                            if config.variant is PipelineVariant.FULL else 1)
            cycles += min(spec.block_compressed_size, 64) / stream_width
        return cycles

    def decode_pair(self, input_no: int, key_len: int, value_len: int,
                    new_block: bool = False,
                    block_compressed_size: int = 4096) -> None:
        """The functional decoder produced one pair for ``input_no``.

        Callers decode at most ``kv_fifo_depth`` pairs ahead of the pops
        (the engine advances one pair per consumed head), so a free slot
        is always available here.
        """
        state = self._inputs[input_no]
        spec = _PairSpec(key_len, value_len, new_block, block_compressed_size)
        if not state.free_slots:
            raise SimulationError(
                f"decoder for input {input_no} ran more than "
                f"{self.config.kv_fifo_depth} pairs ahead of the Comparer")
        slot_available = state.free_slots.popleft()
        start = max(state.decoder_clock, slot_available)
        # Time the decoder spent blocked on a full FIFO (backpressure).
        self.report.decoder_backpressure_cycles += max(
            0.0, slot_available - state.decoder_clock)
        service = self._decode_service(spec)
        self.report.decoder_busy_cycles += service
        end = start + service
        state.decoder_clock = end
        state.pending.append(end)
        state.high_water = max(state.high_water, len(state.pending))

    # ------------------------------------------------------------------
    # Comparer / transfer / encoder side
    # ------------------------------------------------------------------

    def head_ready_time(self, input_no: int) -> float:
        state = self._inputs[input_no]
        if not state.pending:
            raise SimulationError(
                f"input {input_no} has no decoded head pair")
        return state.pending[0]

    def comparer_round(self, live_inputs: list[int], winner: int,
                       drop: bool, key_len: int, value_len: int) -> float:
        """Run one selection round; returns the time the winner's pair
        left the pipeline (its FIFO slot free time)."""
        heads_ready = max(self.head_ready_time(i) for i in live_inputs)
        round_start = max(self._t_comparer, heads_ready)
        self.report.decoder_stall_cycles += max(
            0.0, heads_ready - self._t_comparer)
        if self.config.variant in (PipelineVariant.BASIC,
                                   PipelineVariant.SPLIT_BLOCKS):
            # Before key-value separation the Comparer reads the fused
            # entry — the value rides through the compare path (§V-C's
            # motivation); the tree and existence check still work on
            # keys alone.
            fanin = self.config.comparer_fanin_depth()
            round_cycles = (key_len + value_len) + (1 + fanin) * key_len
        else:
            round_cycles = comparer_period(key_len, self.config.num_inputs)
        round_end = round_start + round_cycles
        self._t_comparer = round_end
        self.report.comparer_rounds += 1
        self.report.comparer_busy_cycles += round_cycles

        if drop:
            self.report.pairs_dropped += 1
            slot_free = round_end
        else:
            slot_free = self._run_value_path(round_end, key_len, value_len)
            self.report.pairs_transferred += 1
        self._pop_and_refill(winner, slot_free)
        return slot_free

    def _run_value_path(self, ready: float, key_len: int,
                        value_len: int) -> float:
        config = self.config
        start = max(ready, self._t_value_bus)
        if config.variant is PipelineVariant.FULL:
            transfer = max(key_len, value_len / config.value_width)
            staging = value_len / config.output_buffer_width
        elif config.variant is PipelineVariant.KV_SEPARATION:
            transfer = float(max(key_len, value_len))
            staging = value_len / config.output_buffer_width
        else:
            # Fused key-value stream: one serial move, no separate staging.
            transfer = float(key_len + value_len)
            staging = 0.0
        end = start + transfer + staging
        self.report.value_bus_busy_cycles += transfer + staging
        self._t_value_bus = end
        # Encoder key work overlaps the value drain on its own resource.
        self._t_encoder = max(self._t_encoder, start) + key_len
        self.report.encoder_busy_cycles += key_len
        return end

    def block_flush(self, block_bytes: int) -> None:
        """A data block (plus its index entry) streams out over AXI."""
        width = (self.config.w_out
                 if self.config.variant is PipelineVariant.FULL else 8)
        busy = block_bytes / width
        self._t_writer = max(self._t_writer,
                             max(self._t_value_bus, self._t_encoder)) + busy
        self.report.writer_busy_cycles += busy
        self.report.output_bytes += block_bytes

    def _pop_and_refill(self, input_no: int, slot_free: float) -> None:
        state = self._inputs[input_no]
        if not state.pending:
            raise SimulationError(f"pop on empty FIFO for input {input_no}")
        state.pending.popleft()
        state.free_slots.append(slot_free)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def finalize(self, input_bytes: int) -> TimingReport:
        """Drain the pipeline, close the report, and (when a registry is
        attached) publish the run's ``fpga_pipeline_*`` metrics."""
        self.report.input_bytes = input_bytes
        self.report.total_cycles = max(
            self._t_comparer, self._t_value_bus, self._t_encoder,
            self._t_writer)
        self.report.fifo_high_water = [state.high_water
                                       for state in self._inputs]
        if self.metrics is not None:
            from repro.obs.names import publish_timing_report
            publish_timing_report(self.metrics, self.report, self.config)
        return self.report
