"""Table V — compaction speed (MB/s) of CPU vs 2-input FCAE.

Sweeps value length 64..2048 bytes and value-path width V in
{8, 16, 32, 64}; keys are 16 bytes (24 with mark fields), W_in = W_out =
64.  FCAE speeds come from the behavioral pipeline model replaying a
two-run synthetic merge; CPU speeds come from the harness-calibrated CPU
cost model.
"""

from __future__ import annotations

from repro.bench.common import (
    VALUE_LENGTHS,
    VALUE_WIDTHS,
    ExperimentResult,
    two_input_config,
)
from repro.fpga.engine import simulate_synthetic
from repro.sim.cpu import CpuCostModel

PAPER = {
    64: (5.3, 178.5, 164.5, 181.8, 175.8),
    128: (6.9, 260.1, 312.1, 311.8, 291.7),
    256: (9.0, 343.9, 451.6, 510.7, 524.9),
    512: (12.2, 446.9, 627.9, 672.8, 745.4),
    1024: (14.8, 448.5, 739.5, 896.7, 1026.3),
    2048: (13.3, 506.3, 709.0, 1077.4, 1205.6),
}

KEY_LENGTH = 16
DEFAULT_PAIRS_PER_INPUT = 4000


def fcae_speed(value_width: int, value_length: int,
               pairs_per_input: int = DEFAULT_PAIRS_PER_INPUT) -> float:
    config = two_input_config(value_width)
    report = simulate_synthetic(
        config, [pairs_per_input, pairs_per_input], KEY_LENGTH, value_length)
    return report.speed_mbps(config)


def run(scale: float = 1.0) -> ExperimentResult:
    pairs = max(200, int(DEFAULT_PAIRS_PER_INPUT * scale))
    cpu = CpuCostModel()
    result = ExperimentResult(
        name="Table V",
        title="Compaction speed (MB/s), CPU vs 2-input FCAE",
        columns=["L_value", "CPU", "V=8", "V=16", "V=32", "V=64",
                 "paper_CPU", "paper_V=64"],
    )
    for value_length in VALUE_LENGTHS:
        cpu_speed = cpu.compaction_speed_mbps(KEY_LENGTH, value_length)
        speeds = [fcae_speed(v, value_length, pairs) for v in VALUE_WIDTHS]
        paper = PAPER[value_length]
        result.add_row(value_length, cpu_speed, *speeds,
                       paper[0], paper[4])
    result.notes.append(
        "FCAE speeds from the behavioral pipeline simulator at 200 MHz; "
        "CPU from the Table-V-calibrated harness model.")
    return result
