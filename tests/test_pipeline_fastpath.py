"""The pipeline fast path must be cycle-identical to the event loop.

``PipelineTimer.uniform_rounds`` extrapolates backpressure-steady runs in
closed form; attaching instrumentation forces the pure per-pair event
loop.  Every test here runs both and asserts the full TimingReport
matches exactly — on Table II/III-shaped configurations (N, V, variant,
FIFO depth sweeps) and on the real engine.
"""

import dataclasses

import pytest

from repro import obs
from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.engine import CompactionEngine, simulate_synthetic
from repro.fpga.pipeline_sim import PipelineTimer, replay_rounds
from repro.lsm.compaction import _BufferFile
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder
from repro.obs.registry import MetricsRegistry
from repro.util.comparator import BytewiseComparator

REPORT_FIELDS = (
    "total_cycles", "comparer_rounds", "pairs_transferred", "pairs_dropped",
    "decoder_stall_cycles", "value_bus_busy_cycles", "writer_busy_cycles",
    "input_bytes", "output_bytes", "decoder_backpressure_cycles",
    "decoder_busy_cycles", "comparer_busy_cycles", "encoder_busy_cycles",
    "fifo_high_water",
)


def assert_reports_identical(fast, slow):
    for name in REPORT_FIELDS:
        assert getattr(fast, name) == getattr(slow, name), name


def make_rounds(n, key_len, value_len, drop_every=0, flush_every=0,
                block_every=0):
    """A single-input tail: per-round (sizes, drop, flush, refill) specs."""
    rounds = []
    for i in range(n):
        drop = bool(drop_every) and i % drop_every == 0
        flush = 4096 if flush_every and i % flush_every == flush_every - 1 else 0
        if i + 1 < n:
            new_block = bool(block_every) and (i + 1) % block_every == 0
            refill = (key_len, value_len, new_block, 4096)
        else:
            refill = None
        rounds.append((key_len, value_len, drop, flush, refill))
    return rounds


def run_replay(config, rounds, instrumented):
    metrics = MetricsRegistry() if instrumented else None
    timer = PipelineTimer(config, metrics=metrics)
    timer.decode_pair(0, rounds[0][0], rounds[0][1], new_block=True,
                      block_compressed_size=4096)
    if instrumented:
        assert timer._profile_intervals is not None
        for key_len, value_len, drop, flush, refill in rounds:
            timer.comparer_round([0], 0, drop, key_len, value_len)
            if flush:
                timer.block_flush(flush)
            if refill is not None:
                timer.decode_pair(0, *refill)
    else:
        assert timer._profile_intervals is None
        replay_rounds(timer, 0, rounds)
    return timer.finalize(12345)


CONFIGS = [
    FpgaConfig(num_inputs=2, value_width=16),
    FpgaConfig(num_inputs=2, value_width=64),
    FpgaConfig(num_inputs=9, value_width=32),
    dataclasses.replace(FpgaConfig(num_inputs=2, value_width=16),
                        variant=PipelineVariant.BASIC),
    dataclasses.replace(FpgaConfig(num_inputs=2, value_width=16),
                        variant=PipelineVariant.KV_SEPARATION),
    dataclasses.replace(FpgaConfig(num_inputs=4, value_width=16),
                        kv_fifo_depth=1),
    dataclasses.replace(FpgaConfig(num_inputs=4, value_width=16),
                        kv_fifo_depth=8),
]

PATTERNS = [
    ("plain", dict()),
    ("drops", dict(drop_every=7)),
    ("flushes", dict(flush_every=40)),
    ("block_boundaries", dict(block_every=45)),
    ("everything", dict(drop_every=11, flush_every=37, block_every=29)),
]


class TestReplayIdentity:
    @pytest.mark.parametrize("config", CONFIGS,
                             ids=lambda c: f"N{c.num_inputs}-V{c.value_width}-"
                                           f"{c.variant.name}-D{c.kv_fifo_depth}")
    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p[0])
    def test_batched_replay_matches_event_loop(self, config, pattern):
        rounds = make_rounds(400, 24, 512, **pattern[1])
        fast = run_replay(config, rounds, instrumented=False)
        slow = run_replay(config, rounds, instrumented=True)
        assert_reports_identical(fast, slow)

    def test_short_runs_fall_back_exactly(self):
        """Runs below the settle threshold take the per-pair loop."""
        config = FpgaConfig(num_inputs=2, value_width=16)
        rounds = make_rounds(5, 24, 512)
        fast = run_replay(config, rounds, instrumented=False)
        slow = run_replay(config, rounds, instrumented=True)
        assert_reports_identical(fast, slow)

    def test_extrapolated_counters_are_exact_integers(self):
        config = FpgaConfig(num_inputs=2, value_width=16)
        report = run_replay(config, make_rounds(1000, 24, 512),
                            instrumented=False)
        assert report.comparer_rounds == 1000
        assert report.pairs_transferred == 1000


class TestSimulateSyntheticIdentity:
    @pytest.mark.parametrize("pairs_per_input,drop_fraction", [
        ([1500, 1500], 0.0),
        ([200, 2400], 0.0),
        ([1000, 3000], 0.2),
        ([300] * 9, 0.1),
    ])
    def test_matches_instrumented_run(self, pairs_per_input, drop_fraction):
        num_inputs = len(pairs_per_input)
        config = FpgaConfig(num_inputs=num_inputs, value_width=16)
        fast = simulate_synthetic(config, pairs_per_input, 16, 512,
                                  drop_fraction=drop_fraction)
        with obs.scoped(MetricsRegistry()):
            slow = simulate_synthetic(config, pairs_per_input, 16, 512,
                                      drop_fraction=drop_fraction)
        assert_reports_identical(fast, slow)


def build_image(keys, seq0=1, value_len=100):
    options = Options(compression="none", bloom_bits_per_key=0)
    comparator = InternalKeyComparator(BytewiseComparator())
    dest = _BufferFile()
    builder = TableBuilder(options, dest, comparator)
    for i, key in enumerate(keys):
        builder.add(encode_internal_key(key, seq0 + i, TYPE_VALUE),
                    bytes(value_len))
    builder.finish()
    return bytes(dest.data)


class TestEngineIdentity:
    def test_long_tail_merge_matches_instrumented_run(self):
        """A 2-input merge with a long single-input tail — the case the
        engine batches — must match the event loop cycle-for-cycle and
        produce the same output images."""
        head = build_image([b"h%012d" % i for i in range(150)], seq0=10000)
        tail = build_image([b"t%012d" % i for i in range(2000)])
        config = FpgaConfig(num_inputs=2, value_width=16)
        fast = CompactionEngine(config, check_resources=False).run_on_images(
            [[head], [tail]])
        with obs.scoped(MetricsRegistry()):
            slow = CompactionEngine(config,
                                    check_resources=False).run_on_images(
                [[head], [tail]])
        assert_reports_identical(fast.timing, slow.timing)
        assert [o.data for o in fast.outputs] == [o.data for o in slow.outputs]

    def test_shadowed_tail_with_drops_matches(self):
        """Duplicate user keys in the tail make the Comparer drop pairs
        mid-run; the batching must split and still match."""
        keys = []
        for i in range(600):
            keys.append(b"k%012d" % i)
        newer = build_image(keys[:50], seq0=50000)
        older = build_image(keys, seq0=1)
        config = FpgaConfig(num_inputs=2, value_width=16)
        fast = CompactionEngine(config, check_resources=False).run_on_images(
            [[newer], [older]], drop_deletions=True)
        with obs.scoped(MetricsRegistry()):
            slow = CompactionEngine(config,
                                    check_resources=False).run_on_images(
                [[newer], [older]], drop_deletions=True)
        assert_reports_identical(fast.timing, slow.timing)
        assert [o.data for o in fast.outputs] == [o.data for o in slow.outputs]
