"""Critical-path attribution: interval sweep semantics, metric
publication, and contrasting-workload classification."""

import pytest

from repro import obs
from repro.fpga.config import FpgaConfig
from repro.fpga.engine import simulate_synthetic
from repro.obs.profile import (
    CLASSES,
    attribute_intervals,
    profile_from_registry,
    publish_attribution,
    render_profile,
)


def config(**kwargs):
    defaults = dict(num_inputs=2, value_width=16, w_in=64, w_out=64)
    defaults.update(kwargs)
    return FpgaConfig(**defaults)


class TestAttributeIntervals:
    def test_partition_is_exact(self):
        attribution = attribute_intervals(
            [("decoder", 0.0, 4.0), ("comparer", 2.0, 6.0),
             ("value_bus", 5.0, 7.0)], 10.0)
        assert sum(attribution.cycles.values()) == pytest.approx(10.0)
        assert sum(attribution.fractions.values()) == pytest.approx(
            1.0, abs=1e-9)

    def test_downstream_module_wins_overlap(self):
        attribution = attribute_intervals(
            [("decoder", 0.0, 10.0), ("value_bus", 0.0, 10.0)], 10.0)
        assert attribution.cycles["value_bus"] == pytest.approx(10.0)
        assert attribution.cycles["decoder"] == 0.0
        assert attribution.bottleneck == "value_bus"

    def test_idle_time_is_backpressure(self):
        attribution = attribute_intervals([("comparer", 4.0, 6.0)], 10.0)
        assert attribution.cycles["backpressure"] == pytest.approx(8.0)
        assert attribution.bottleneck == "backpressure"

    def test_intervals_clamped_to_run(self):
        attribution = attribute_intervals(
            [("writer", -5.0, 5.0), ("decoder", 8.0, 99.0)], 10.0)
        assert attribution.cycles["writer"] == pytest.approx(5.0)
        assert attribution.cycles["decoder"] == pytest.approx(2.0)
        assert sum(attribution.cycles.values()) == pytest.approx(10.0)

    def test_empty_run(self):
        attribution = attribute_intervals([], 0.0)
        assert attribution.bottleneck == "idle"
        assert all(f == 0.0 for f in attribution.fractions.values())

    def test_as_dict_shape(self):
        attribution = attribute_intervals([("comparer", 0.0, 1.0)], 1.0)
        doc = attribution.as_dict()
        assert set(doc["cycles"]) == set(CLASSES)
        assert doc["bottleneck"] == "comparer"


class TestRunAttribution:
    def run(self, value_length, **cfg_kwargs):
        registry = obs.MetricsRegistry()
        with obs.scoped(registry=registry):
            report = simulate_synthetic(config(**cfg_kwargs), [400, 400],
                                        16, value_length)
        return report, registry

    def test_fractions_sum_to_one(self):
        for value_length in (64, 2048):
            report, _ = self.run(value_length)
            total = sum(report.attribution.fractions.values())
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_contrasting_workloads_name_different_modules(self):
        """The ISSUE's acceptance check: small-value pairs are
        Comparer-bound, large-value pairs are bound by the value path."""
        small, _ = self.run(64)
        large, _ = self.run(2048)
        assert small.attribution.bottleneck == "comparer"
        assert large.attribution.bottleneck == "value_bus"
        assert (small.attribution.bottleneck
                != large.attribution.bottleneck)

    def test_attributed_cycles_partition_total(self):
        report, _ = self.run(512)
        assert sum(report.attribution.cycles.values()) == pytest.approx(
            report.total_cycles)

    def test_bottleneck_metrics_published(self):
        report, registry = self.run(2048)
        assert registry.get_value("fpga_pipeline_bottleneck_runs_total",
                                  module="value_bus") == 1
        attributed = registry.sum_family(
            "fpga_pipeline_bottleneck_cycles_total")
        assert attributed == pytest.approx(report.total_cycles)


class TestPublishAndReport:
    def test_publish_attribution_accumulates(self):
        registry = obs.MetricsRegistry()
        attribution = attribute_intervals([("comparer", 0.0, 4.0)], 10.0)
        publish_attribution(registry, attribution)
        publish_attribution(registry, attribution)
        assert registry.get_value("fpga_pipeline_bottleneck_runs_total",
                                  module="backpressure") == 2
        assert registry.get_value(
            "fpga_pipeline_bottleneck_cycles_total",
            module="comparer") == pytest.approx(8.0)

    def test_profile_from_registry_shape(self):
        registry = obs.MetricsRegistry()
        obs.names.register_all(registry)
        with obs.scoped(registry=registry):
            simulate_synthetic(config(), [200, 200], 16, 256)
        profile = profile_from_registry(registry)
        kernel = profile["kernel"]
        assert kernel["runs"] == 1
        assert kernel["total_cycles"] > 0
        assert set(kernel["modules"]) == set(CLASSES)
        fractions = sum(m["attributed_fraction"]
                        for m in kernel["modules"].values())
        assert fractions == pytest.approx(1.0, abs=1e-6)
        assert kernel["bottleneck"] in CLASSES

    def test_render_profile_mentions_bottleneck(self):
        registry = obs.MetricsRegistry()
        obs.names.register_all(registry)
        with obs.scoped(registry=registry):
            simulate_synthetic(config(), [200, 200], 16, 2048)
        text = render_profile(profile_from_registry(registry))
        assert "bottleneck: value_bus" in text
        assert "comparer" in text
