"""Human-readable stats report — LevelDB's ``GetProperty("leveldb.stats")``
idiom, rendered from the metric views.

The report is deliberately built by iterating ``DbStats.as_dict()`` /
``SchedulerStats.as_dict()`` rather than naming fields one by one, so a
counter added to the registry shows up everywhere (CLI ``stats``, bench
reports, ``db.property``) without touching this module.
"""

from __future__ import annotations


def _fmt(value) -> str:
    if isinstance(value, float) and not float(value).is_integer():
        return f"{value:.6f}"
    return str(int(value))


def _counter_block(title: str, counts: dict) -> list[str]:
    lines = [title]
    width = max((len(k) for k in counts), default=0)
    for key, value in counts.items():
        lines.append(f"  {key.ljust(width)}  {_fmt(value)}")
    return lines


def render_db_report(db, scheduler=None) -> str:
    """The text behind ``LsmDB.property("repro.stats")``.

    ``db`` is duck-typed (an :class:`repro.lsm.db.LsmDB`); ``scheduler``
    defaults to the db's compaction executor when that executor carries
    mergeable stats (the FPGA offload case).
    """
    stats = db.stats
    lines = ["repro.stats", "", "                         Compactions",
             "level   files     size(MB)"]
    lines.append("-" * 27)
    counts = db.level_file_counts()
    sizes = db.level_sizes()
    for level, (files, nbytes) in enumerate(zip(counts, sizes)):
        # lowercase "level N" keys the CLI tests rely on
        lines.append(f"level {level}   {files:5d} {nbytes / 1e6:12.2f}")
    lines.append("")
    lines.append(f"sequence: {db.versions.last_sequence}")
    uptime = getattr(db, "uptime_seconds", None)
    if uptime is not None:
        lines.append(f"uptime_seconds: {uptime():.3f}")
    segments = getattr(db, "journal_segments", None)
    if segments is not None:
        lines.append(f"journal_segments: {segments()}")
    lines.append(f"write_amplification: {stats.write_amplification:.3f}")
    lines.append("")
    lines.extend(_counter_block("counters:", stats.as_dict()))
    tenant_ops = getattr(db, "tenant_op_counts", None)
    if tenant_ops is not None:
        counts = tenant_ops()
        if counts:
            lines.append("")
            lines.extend(_counter_block(
                "tenant ops:",
                {f"{tenant}/{op}": n
                 for tenant, ops in sorted(counts.items())
                 for op, n in sorted(ops.items())}))

    cache = getattr(db, "block_cache", None)
    if cache is not None:
        lines.append("")
        lines.append(
            f"block_cache: {cache.usage} bytes cached, "
            f"hit_ratio {stats.block_cache_hit_ratio:.3f} "
            f"({int(stats.block_cache_hits)} hits / "
            f"{int(stats.block_cache_misses)} misses)")

    if scheduler is None:
        executor_stats = getattr(getattr(db, "_executor", None),
                                 "stats", None)
        if executor_stats is not None and hasattr(executor_stats,
                                                  "as_dict"):
            scheduler_stats = executor_stats
        else:
            scheduler_stats = None
    else:
        scheduler_stats = scheduler.stats
    if scheduler_stats is not None:
        lines.append("")
        lines.extend(_counter_block("offload (scheduler):",
                                    scheduler_stats.as_dict()))
        lines.append(
            f"  pcie_fraction_of_offload  "
            f"{scheduler_stats.pcie_fraction_of_offload:.4f}")
    return "\n".join(lines) + "\n"


def render_level_stats(db) -> str:
    """The text behind ``LsmDB.property("repro.levelstats")`` — the
    LevelDB ``leveldb.stats`` table extended with per-level
    amplification (write(MB)/read(MB) are cumulative compaction traffic
    into/out of each level; W-Amp/S-Amp/R-Amp are the gauges documented
    in DESIGN.md)."""
    rows = db.level_amplification()
    lines = ["repro.levelstats", "",
             "level   files     size(MB)    write(MB)     read(MB)"
             "    W-Amp    S-Amp  R-Amp",
             "-" * 76]
    tot_files = tot_bytes = tot_write = tot_read = 0
    for level, row in enumerate(rows):
        lines.append(
            f"level {level}   {row['files']:5d} "
            f"{row['bytes'] / 1e6:12.2f} {row['write_bytes'] / 1e6:12.2f} "
            f"{row['read_bytes'] / 1e6:12.2f} "
            f"{row['write_amp']:8.3f} {row['space_amp']:8.3f} "
            f"{row['read_amp']:6.0f}")
        tot_files += row["files"]
        tot_bytes += row["bytes"]
        tot_write += row["write_bytes"]
        tot_read += row["read_bytes"]
    lines.append("-" * 76)
    lines.append(
        f"total     {tot_files:5d} {tot_bytes / 1e6:12.2f} "
        f"{tot_write / 1e6:12.2f} {tot_read / 1e6:12.2f}")
    lines.append("")
    lines.append(
        f"write_amplification: {db.stats.write_amplification:.3f}")
    return "\n".join(lines) + "\n"
