"""System simulator: the paper's end-to-end effects must emerge."""

import pytest

from repro.errors import InvalidArgumentError
from repro.fpga.config import CONFIG_9_INPUT, FpgaConfig
from repro.lsm.options import Options
from repro.sim.system import (
    SystemConfig,
    fpga_kernel_speed_mbps,
    simulate_fillrandom,
    simulate_ycsb,
)
from repro.workloads import YCSB_WORKLOADS

GB = 1 << 30


def fcae_config(options, data=GB, **kwargs):
    return SystemConfig(mode="fcae", options=options, fpga=CONFIG_9_INPUT,
                        data_size_bytes=data, **kwargs)


def base_config(options, data=GB, **kwargs):
    return SystemConfig(mode="leveldb", options=options,
                        data_size_bytes=data, **kwargs)


class TestConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(InvalidArgumentError):
            SystemConfig(mode="gpu")

    def test_bad_size_rejected(self):
        with pytest.raises(InvalidArgumentError):
            SystemConfig(data_size_bytes=0)


class TestFillrandom:
    def test_fcae_beats_baseline(self):
        options = Options(value_length=512)
        base = simulate_fillrandom(base_config(options))
        fcae = simulate_fillrandom(fcae_config(options))
        assert fcae.throughput_mbps > 1.5 * base.throughput_mbps

    def test_speedup_in_paper_band(self):
        # Paper reports 2.2x .. 6.4x across its write experiments.
        options = Options(value_length=512)
        base = simulate_fillrandom(base_config(options))
        fcae = simulate_fillrandom(fcae_config(options))
        speedup = fcae.throughput_mbps / base.throughput_mbps
        assert 1.8 < speedup < 7.0

    def test_baseline_absolute_near_paper(self):
        # Paper Table VI: LevelDB 2.3-2.9 MB/s at 1 GB.
        options = Options(value_length=512)
        base = simulate_fillrandom(base_config(options))
        assert 1.5 < base.throughput_mbps < 5.0

    def test_throughput_declines_with_data_size(self):
        options = Options(value_length=512)
        small = simulate_fillrandom(base_config(options, data=GB // 4))
        large = simulate_fillrandom(base_config(options, data=2 * GB))
        assert large.throughput_mbps < small.throughput_mbps

    def test_fcae_declines_more_gently(self):
        options = Options(value_length=512)
        sizes = (GB // 4, 2 * GB)
        base_drop = (simulate_fillrandom(base_config(options, sizes[0]))
                     .throughput_mbps
                     / simulate_fillrandom(base_config(options, sizes[1]))
                     .throughput_mbps)
        fcae_drop = (simulate_fillrandom(fcae_config(options, sizes[0]))
                     .throughput_mbps
                     / simulate_fillrandom(fcae_config(options, sizes[1]))
                     .throughput_mbps)
        assert fcae_drop < base_drop

    def test_speedup_grows_with_value_length(self):
        def speedup(L):
            options = Options(value_length=L)
            base = simulate_fillrandom(base_config(options))
            fcae = simulate_fillrandom(fcae_config(options))
            return fcae.throughput_mbps / base.throughput_mbps
        assert speedup(2048) > speedup(64)

    def test_pcie_fraction_single_digit(self):
        options = Options(value_length=512)
        fcae = simulate_fillrandom(fcae_config(options))
        assert 0 < fcae.pcie_fraction < 0.10

    def test_write_amplification_realistic(self):
        options = Options(value_length=512)
        result = simulate_fillrandom(base_config(options))
        assert 3 < result.write_amplification < 40

    def test_n2_falls_back_to_software_for_l0(self):
        options = Options(value_length=512)
        config = SystemConfig(
            mode="fcae", options=options,
            fpga=FpgaConfig(num_inputs=2, value_width=16),
            data_size_bytes=GB // 2)
        result = simulate_fillrandom(config)
        assert result.software_tasks > 0  # L0 jobs exceeded N=2
        assert result.fpga_tasks > 0

    def test_n9_offloads_everything(self):
        options = Options(value_length=512)
        result = simulate_fillrandom(fcae_config(options, GB // 2))
        assert result.software_tasks == 0

    def test_deterministic(self):
        options = Options(value_length=512)
        a = simulate_fillrandom(base_config(options, GB // 4))
        b = simulate_fillrandom(base_config(options, GB // 4))
        assert a.elapsed_seconds == b.elapsed_seconds


class TestKernelSpeedCache:
    def test_cached_value_stable(self):
        first = fpga_kernel_speed_mbps(CONFIG_9_INPUT, 16, 512, 5)
        second = fpga_kernel_speed_mbps(CONFIG_9_INPUT, 16, 512, 5)
        assert first == second > 0

    def test_streams_clamped_to_n(self):
        speed = fpga_kernel_speed_mbps(CONFIG_9_INPUT, 16, 512, 50)
        assert speed > 0


class TestYcsb:
    OPTIONS = Options(value_length=1024)
    RECORDS = 2_000_000
    OPS = 2_000_000

    def _speedup(self, name):
        workload = YCSB_WORKLOADS[name]
        base = simulate_ycsb(base_config(self.OPTIONS), workload,
                             self.RECORDS, self.OPS)
        fcae = simulate_ycsb(fcae_config(self.OPTIONS), workload,
                             self.RECORDS, self.OPS)
        return fcae.ops_per_second / base.ops_per_second

    def test_read_only_unchanged(self):
        assert self._speedup("c") == pytest.approx(1.0)

    def test_write_only_fastest(self):
        load = self._speedup("load")
        b = self._speedup("b")
        assert load > b >= 0.99

    def test_speedup_grows_with_write_ratio(self):
        assert self._speedup("a") > self._speedup("b")

    def test_all_workloads_non_regressing(self):
        for name in ("load", "a", "b", "c", "d", "e", "f"):
            assert self._speedup(name) >= 0.99, name


class TestCompactionUnits:
    def test_bad_num_units_rejected(self):
        with pytest.raises(InvalidArgumentError):
            SystemConfig(num_units=0)

    def test_more_units_never_slower(self):
        options = Options(value_length=512)
        one = simulate_fillrandom(fcae_config(options, data=GB // 8,
                                              num_units=1))
        two = simulate_fillrandom(fcae_config(options, data=GB // 8,
                                              num_units=2))
        assert two.elapsed_seconds <= one.elapsed_seconds * 1.001
        assert two.fpga_tasks == one.fpga_tasks

    def test_units_reduce_stall_time(self):
        """Extra units drain the compaction backlog faster, so the L0
        stop/slowdown machinery bites less (or at worst the same)."""
        options = Options(value_length=256)
        one = simulate_fillrandom(fcae_config(options, data=GB // 8,
                                              num_units=1))
        four = simulate_fillrandom(fcae_config(options, data=GB // 8,
                                               num_units=4))
        assert four.stall_seconds <= one.stall_seconds * 1.001


class TestSimStallWindow:
    def test_window_slides_on_modeled_time(self):
        """The stall window reads the simulator's virtual clock, so its
        quantiles describe the last simulated minute — non-zero only if
        stalls occurred near the end of simulated time."""
        from repro import obs
        from repro.obs.exposition import to_prometheus_text

        registry = obs.MetricsRegistry()
        obs.names.register_all(registry)
        token = obs.install(registry=registry)
        try:
            result = simulate_fillrandom(base_config(
                Options(value_length=512, write_buffer_size=1 << 20),
                data=GB // 16))
        finally:
            obs.uninstall(token)
        assert result.stall_seconds > 0
        lines = [line for line in to_prometheus_text(registry).splitlines()
                 if line.startswith("sim_stall_window_seconds")]
        assert any('quantile="p99"' in line for line in lines)
        # Label order (p50, p95, p99, p999) is quantile order, so
        # the exposed values must be monotone.
        values = [float(line.split()[-1]) for line in lines]
        assert values == sorted(values) and len(values) == 4
