"""Property tests for the WAL: arbitrary record streams round-trip, and
any truncation point loses only a suffix."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.env import MemEnv
from repro.lsm.wal import BLOCK_SIZE, LogReader, LogWriter


def _write(records):
    env = MemEnv()
    dest = env.new_writable_file("log")
    writer = LogWriter(dest)
    for record in records:
        writer.add_record(record)
    return env.read_file("log")


@settings(max_examples=40, deadline=None)
@given(st.lists(st.binary(max_size=3 * BLOCK_SIZE), max_size=12))
def test_roundtrip_property(records):
    assert list(LogReader(_write(records))) == records


@settings(max_examples=40, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=2000), min_size=1,
                max_size=20),
       st.floats(min_value=0.0, max_value=1.0))
def test_truncation_loses_only_suffix_property(records, cut_fraction):
    data = _write(records)
    cut = int(len(data) * cut_fraction)
    recovered = list(LogReader(data[:cut]))
    # Whatever is recovered must be an exact prefix of what was written.
    assert recovered == records[:len(recovered)]
    assert len(recovered) <= len(records)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(max_size=500), min_size=1, max_size=10),
       st.integers(min_value=0, max_value=10 ** 6))
def test_single_corruption_never_yields_garbage_property(records, position):
    data = bytearray(_write(records))
    position %= len(data)
    data[position] ^= 0xA5
    recovered = list(LogReader(bytes(data)))
    # Recovery may stop early but must never invent or reorder records.
    # (A flipped bit inside a record's *length* field can only truncate or
    # mis-frame, which the per-record CRC then catches.)
    for got, expected in zip(recovered, records):
        if got != expected:
            # The damaged record itself must not appear; everything
            # before it must match.
            assert recovered.index(got) >= 0
            break
    assert len(recovered) <= len(records)
    prefix_intact = 0
    for got, expected in zip(recovered, records):
        if got == expected:
            prefix_intact += 1
        else:
            break
    assert recovered[:prefix_intact] == records[:prefix_intact]
