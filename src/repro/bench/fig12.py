"""Fig 12 — compaction speed: 2-input vs 9-input FCAE over value length.

The 9-input engine runs the resource-feasible (W_in=8, V=8)
configuration; the 2-input engine its (W_in=64, V=16) default.  The gap
is widest at small values (Comparer-bound: 6 x L_key vs 3 x L_key rounds)
and closes at large values (both Decoder-bound).
"""

from __future__ import annotations

from repro.bench.common import (
    N9_CONFIG,
    VALUE_LENGTHS,
    ExperimentResult,
    two_input_config,
)
from repro.fpga.engine import simulate_synthetic

KEY_LENGTH = 16
DEFAULT_PAIRS = 4000


def speeds_for(value_length: int, pairs: int) -> tuple[float, float]:
    # Both engines at V=8 so the comparison isolates the input-count
    # effect, matching §VII-C1's observation that the Data Block Decoder
    # period "is almost the same for N=2 and N=9".
    cfg2 = two_input_config(8)
    report2 = simulate_synthetic(cfg2, [pairs, pairs], KEY_LENGTH,
                                 value_length)
    report9 = simulate_synthetic(N9_CONFIG, [pairs] * 9, KEY_LENGTH,
                                 value_length)
    return report2.speed_mbps(cfg2), report9.speed_mbps(N9_CONFIG)


def run(scale: float = 1.0) -> ExperimentResult:
    pairs = max(150, int(DEFAULT_PAIRS * scale))
    result = ExperimentResult(
        name="Fig 12",
        title="Compaction speed (MB/s): 2-input vs 9-input FCAE",
        columns=["L_value", "2-input", "9-input", "9/2 ratio"],
    )
    for value_length in VALUE_LENGTHS:
        speed2, speed9 = speeds_for(value_length, pairs)
        result.add_row(value_length, speed2, speed9, speed9 / speed2)
    result.notes.append(
        "paper shape: 9-input degraded at small values, gap narrows as "
        "the bottleneck moves from Comparer to Data Block Decoder")
    return result
