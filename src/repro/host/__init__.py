"""Software integration with the hardware compaction engine (paper §VI).

* :mod:`repro.host.memory` — the unified Input/Output memory interface:
  MetaIn/MetaOut blocks, Index Block Memory and W_in/W_out-aligned Data
  Block Memory (Figs 7 and 8).
* :mod:`repro.host.pcie` — PCIe gen3 x16 DMA transfer model.
* :mod:`repro.host.device` — :class:`FcaeDevice`: marshal -> DMA ->
  kernel -> DMA -> install, with a per-phase timing breakdown.
* :mod:`repro.host.scheduler` — the compaction-thread workflow of Fig 6:
  offload merge compactions whose input count fits the engine's ``N``,
  fall back to software otherwise, and account for the flush/kernel
  overlap the co-design enables.
"""

from repro.host.device import DeviceResult, FcaeDevice
from repro.host.near_storage import NearStorageDevice, NearStorageResult
from repro.host.pcie import PcieModel
from repro.host.scheduler import CompactionScheduler, SchedulerStats
from repro.host.splice import SplitTable, combine_regions, split_table_image

__all__ = [
    "CompactionScheduler",
    "DeviceResult",
    "FcaeDevice",
    "NearStorageDevice",
    "NearStorageResult",
    "PcieModel",
    "SchedulerStats",
    "SplitTable",
    "combine_regions",
    "split_table_image",
]
