"""LevelDB-style variable-length integer coding.

Varints store an unsigned integer in base-128 groups, least significant
group first; the high bit of each byte marks continuation.  They are used
throughout the SSTable and WAL formats for lengths and offsets.
"""

from __future__ import annotations

from repro.errors import CorruptionError, InvalidArgumentError

MAX_VARINT32_BYTES = 5
MAX_VARINT64_BYTES = 10

_UINT32_MAX = (1 << 32) - 1
_UINT64_MAX = (1 << 64) - 1


def encode_varint32(value: int) -> bytes:
    """Encode ``value`` (0 <= value < 2**32) as a varint."""
    if not 0 <= value <= _UINT32_MAX:
        raise InvalidArgumentError(f"varint32 out of range: {value}")
    return _encode(value)


def encode_varint64(value: int) -> bytes:
    """Encode ``value`` (0 <= value < 2**64) as a varint."""
    if not 0 <= value <= _UINT64_MAX:
        raise InvalidArgumentError(f"varint64 out of range: {value}")
    return _encode(value)


def _encode(value: int) -> bytes:
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def decode_varint32(buf, offset: int = 0) -> tuple[int, int]:
    """Decode a varint32 from ``buf`` starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`CorruptionError` on a
    truncated or overlong encoding.  ``buf`` may be ``bytes``,
    ``bytearray`` or ``memoryview``; nothing is copied.
    """
    try:
        byte = buf[offset]
    except IndexError:
        raise CorruptionError("truncated or overlong varint") from None
    if byte < 0x80:
        return byte, offset + 1
    return _decode(buf, offset, MAX_VARINT32_BYTES, _UINT32_MAX)


def decode_varint64(buf, offset: int = 0) -> tuple[int, int]:
    """Decode a varint64 from ``buf`` starting at ``offset``.

    Returns ``(value, next_offset)``.  ``buf`` may be ``bytes``,
    ``bytearray`` or ``memoryview``; nothing is copied.
    """
    try:
        byte = buf[offset]
    except IndexError:
        raise CorruptionError("truncated or overlong varint") from None
    if byte < 0x80:
        return byte, offset + 1
    return _decode(buf, offset, MAX_VARINT64_BYTES, _UINT64_MAX)


def _decode(buf, offset: int, max_bytes: int, max_value: int) -> tuple[int, int]:
    result = 0
    shift = 0
    pos = offset
    end = min(len(buf), offset + max_bytes)
    while pos < end:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result > max_value:
                raise CorruptionError("varint value exceeds range")
            return result, pos
        shift += 7
    raise CorruptionError("truncated or overlong varint")


class VarintCursor:
    """Cursor-style bulk varint decoder.

    Sequential decode loops (block entries, block handles, WAL records)
    pay one cursor construction instead of a ``(value, next_offset)``
    tuple allocation and bounds setup per field.  The single-byte case —
    virtually every length field in a block — is inlined; multi-byte
    values fall back to the shared decoder.

    ``buf`` may be ``bytes``, ``bytearray`` or ``memoryview``; the cursor
    never copies it.  ``pos`` is public: callers may read it to slice
    payload bytes and advance it with :meth:`skip`.
    """

    __slots__ = ("buf", "pos")

    def __init__(self, buf, pos: int = 0):
        self.buf = buf
        self.pos = pos

    def next32(self) -> int:
        """Decode the varint32 at the cursor and advance past it."""
        buf = self.buf
        pos = self.pos
        try:
            byte = buf[pos]
        except IndexError:
            raise CorruptionError("truncated or overlong varint") from None
        if byte < 0x80:
            self.pos = pos + 1
            return byte
        value, self.pos = _decode(buf, pos, MAX_VARINT32_BYTES, _UINT32_MAX)
        return value

    def next64(self) -> int:
        """Decode the varint64 at the cursor and advance past it."""
        buf = self.buf
        pos = self.pos
        try:
            byte = buf[pos]
        except IndexError:
            raise CorruptionError("truncated or overlong varint") from None
        if byte < 0x80:
            self.pos = pos + 1
            return byte
        value, self.pos = _decode(buf, pos, MAX_VARINT64_BYTES, _UINT64_MAX)
        return value

    def skip(self, nbytes: int) -> None:
        """Advance past ``nbytes`` payload bytes."""
        self.pos += nbytes

    @property
    def at_end(self) -> bool:
        return self.pos >= len(self.buf)
