"""db_bench equivalent — LevelDB's built-in benchmark workloads.

Generates the key/value streams of the db_bench modes the paper uses
(``fillrandom`` is the write-throughput workload of §VII-B2/C) and can
drive a real :class:`~repro.lsm.db.LsmDB`.  Keys follow db_bench's
convention: 16-byte zero-padded decimal of a (random or sequential)
integer in ``[0, num_entries)``; values are compressible repeated
fragments.
"""

from __future__ import annotations

import enum
import random
from typing import Iterator

from repro.errors import InvalidArgumentError, NotFoundError


class FillMode(enum.Enum):
    SEQUENTIAL = "fillseq"
    RANDOM = "fillrandom"


class DbBench:
    """Workload generator bound to one (num_entries, key/value geometry)."""

    def __init__(self, num_entries: int, key_length: int = 16,
                 value_length: int = 128, seed: int = 301):
        if num_entries <= 0:
            raise InvalidArgumentError("num_entries must be positive")
        if key_length < 8:
            raise InvalidArgumentError("key_length must be >= 8")
        self.num_entries = num_entries
        self.key_length = key_length
        self.value_length = value_length
        self._random = random.Random(seed)

    def key_for(self, index: int) -> bytes:
        digits = str(index % self.num_entries).zfill(self.key_length)
        return digits[-self.key_length:].encode()

    def value_for(self, index: int) -> bytes:
        fragment = f"({index:016d})".encode()
        reps = self.value_length // len(fragment) + 1
        return (fragment * reps)[:self.value_length]

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------

    def fill(self, mode: FillMode = FillMode.RANDOM
             ) -> Iterator[tuple[bytes, bytes]]:
        """``num_entries`` puts, sequential or random order."""
        for i in range(self.num_entries):
            index = (i if mode is FillMode.SEQUENTIAL
                     else self._random.randrange(self.num_entries))
            yield self.key_for(index), self.value_for(index)

    def read_keys(self, count: int, random_order: bool = True
                  ) -> Iterator[bytes]:
        for i in range(count):
            index = (self._random.randrange(self.num_entries)
                     if random_order else i)
            yield self.key_for(index)

    # ------------------------------------------------------------------
    # Driving a real database
    # ------------------------------------------------------------------

    def run_fill(self, db, mode: FillMode = FillMode.RANDOM) -> int:
        """Apply the fill; returns user bytes written."""
        written = 0
        for key, value in self.fill(mode):
            db.put(key, value)
            written += len(key) + len(value)
        return written

    def run_readrandom(self, db, count: int) -> tuple[int, int]:
        """Random point reads; returns (found, missing)."""
        found = missing = 0
        for key in self.read_keys(count):
            try:
                db.get(key)
                found += 1
            except NotFoundError:
                missing += 1
        return found, missing

    def run_readseq(self, db, count: int) -> int:
        """Sequential scan of up to ``count`` entries; returns entries
        read (db_bench's ``readseq``)."""
        read = 0
        for _ in db.scan():
            read += 1
            if read >= count:
                break
        return read

    def run_readmissing(self, db, count: int) -> int:
        """Point reads for keys guaranteed absent (db_bench's
        ``readmissing``) — exercises the bloom-filter negative path.
        Returns the number of (expected) misses."""
        missing = 0
        for i in range(count):
            # db_bench appends a suffix so the key can never exist.
            key = self.key_for(self._random.randrange(
                self.num_entries)) + b"."
            try:
                db.get(key)
            except NotFoundError:
                missing += 1
        return missing

    def run_overwrite(self, db, count: int) -> int:
        """Random re-puts over the existing keyspace (db_bench's
        ``overwrite``); returns bytes written."""
        written = 0
        for i in range(count):
            index = self._random.randrange(self.num_entries)
            key = self.key_for(index)
            value = self.value_for(index + count)
            db.put(key, value)
            written += len(key) + len(value)
        return written

    def run_deleterandom(self, db, count: int) -> int:
        """Random deletes (db_bench's ``deleterandom``)."""
        for _ in range(count):
            db.delete(self.key_for(self._random.randrange(
                self.num_entries)))
        return count

    @property
    def user_bytes(self) -> int:
        """Total payload of one fill pass."""
        return self.num_entries * (self.key_length + self.value_length)
