"""Bloom filter: no false negatives, bounded false positives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.filter import BloomFilterPolicy, _leveldb_hash


class TestHash:
    def test_deterministic(self):
        assert _leveldb_hash(b"abc") == _leveldb_hash(b"abc")

    def test_spread(self):
        values = {_leveldb_hash(f"key{i}".encode()) for i in range(1000)}
        assert len(values) > 990

    def test_empty_input(self):
        assert isinstance(_leveldb_hash(b""), int)


class TestPolicy:
    def test_no_false_negatives(self):
        policy = BloomFilterPolicy(10)
        keys = [f"user{i:06d}".encode() for i in range(500)]
        filter_data = policy.create_filter(keys)
        for key in keys:
            assert policy.key_may_match(key, filter_data)

    def test_false_positive_rate_bounded(self):
        policy = BloomFilterPolicy(10)
        keys = [f"present{i}".encode() for i in range(1000)]
        filter_data = policy.create_filter(keys)
        false_positives = sum(
            policy.key_may_match(f"absent{i}".encode(), filter_data)
            for i in range(2000))
        # 10 bits/key gives ~1% theoretical; allow generous slack.
        assert false_positives / 2000 < 0.05

    def test_more_bits_fewer_false_positives(self):
        keys = [f"k{i}".encode() for i in range(500)]
        probes = [f"missing{i}".encode() for i in range(2000)]

        def fp_rate(bits):
            policy = BloomFilterPolicy(bits)
            data = policy.create_filter(keys)
            return sum(policy.key_may_match(p, data) for p in probes)

        assert fp_rate(16) <= fp_rate(4)

    def test_empty_key_set(self):
        policy = BloomFilterPolicy(10)
        filter_data = policy.create_filter([])
        # Minimum-size filter exists and rejects typical probes.
        assert len(filter_data) >= 9

    def test_trailing_byte_records_k(self):
        policy = BloomFilterPolicy(10)
        filter_data = policy.create_filter([b"a"])
        assert filter_data[-1] == policy._k

    def test_tiny_filter_data_rejects(self):
        assert not BloomFilterPolicy.key_may_match(b"x", b"")
        assert not BloomFilterPolicy.key_may_match(b"x", b"\x01")

    def test_reserved_k_returns_true(self):
        # k > 30 is a reserved encoding: must not reject.
        assert BloomFilterPolicy.key_may_match(b"x", b"\x00\x00\x00\x1f")

    def test_invalid_bits_per_key(self):
        with pytest.raises(ValueError):
            BloomFilterPolicy(0)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=24), min_size=1, max_size=200))
def test_membership_property(keys):
    policy = BloomFilterPolicy(10)
    filter_data = policy.create_filter(keys)
    assert all(policy.key_may_match(k, filter_data) for k in keys)
