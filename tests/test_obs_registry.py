"""Metrics registry: counters, gauges, histograms, families, merging."""

import math
import threading

import pytest

from repro.errors import InvalidArgumentError
from repro.obs.registry import (
    BYTES_BUCKETS,
    MetricsRegistry,
    SECONDS_BUCKETS,
    merge_counts,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("c_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self, registry):
        with pytest.raises(InvalidArgumentError):
            registry.counter("c_total").inc(-1)

    def test_get_or_create_returns_same_child(self, registry):
        a = registry.counter("c_total", route="fpga")
        b = registry.counter("c_total", route="fpga")
        assert a is b
        other = registry.counter("c_total", route="software")
        assert other is not a

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("c_total", a="1", b="2")
        b = registry.counter("c_total", b="2", a="1")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0

    def test_set_max_is_high_water(self, registry):
        gauge = registry.gauge("g")
        gauge.set_max(3)
        gauge.set_max(1)
        assert gauge.value == 3.0


class TestHistogram:
    def test_cumulative_counts_end_with_inf(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 0.1):
            hist.observe(value)
        counts = dict(hist.cumulative_counts())
        assert counts[1.0] == 2
        assert counts[10.0] == 3
        assert counts[math.inf] == 4
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.6)

    def test_boundary_value_lands_in_le_bucket(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        hist.observe(1.0)
        assert dict(hist.cumulative_counts())[1.0] == 1

    def test_default_buckets(self, registry):
        hist = registry.histogram("h")
        assert hist.buckets == SECONDS_BUCKETS
        assert BYTES_BUCKETS[0] == 4096


class TestFamilies:
    def test_kind_mismatch_raises(self, registry):
        registry.counter("m_total")
        with pytest.raises(InvalidArgumentError):
            registry.gauge("m_total")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(InvalidArgumentError):
            registry.counter("bad name")
        with pytest.raises(InvalidArgumentError):
            registry.counter("ok_total", **{"0bad": "x"})

    def test_describe_preregisters_family(self, registry):
        registry.describe("later_total", "counter", "Announced early.")
        families = {f.name: f for f in registry.collect()}
        assert families["later_total"].kind == "counter"
        assert families["later_total"].children == {}
        with pytest.raises(InvalidArgumentError):
            registry.describe("x", "summary")

    def test_collect_sorted_by_name(self, registry):
        registry.counter("z_total")
        registry.counter("a_total")
        assert [f.name for f in registry.collect()] == ["a_total", "z_total"]

    def test_get_value_and_sum_family(self, registry):
        registry.counter("c_total", route="fpga").inc(3)
        registry.counter("c_total", route="software").inc(4)
        assert registry.get_value("c_total", route="fpga") == 3.0
        assert registry.get_value("c_total", route="none") == 0.0
        assert registry.get_value("absent_total") == 0.0
        assert registry.sum_family("c_total") == 7.0

    def test_snapshot(self, registry):
        registry.counter("c_total").inc(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c_total"][()] == 2.0
        assert snap["h"][()] == (0.5, 1)

    def test_instance_labels_are_unique(self, registry):
        assert registry.instance_label() != registry.instance_label()


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self, registry):
        counter = registry.counter("c_total")

        def work():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


def test_merge_counts():
    merged = merge_counts([{"a": 1, "b": 2}, {"b": 3, "c": 4.5}])
    assert merged == {"a": 1, "b": 5, "c": 4.5}
