"""Table V + Fig 9: kernel compaction speed, CPU vs 2-input FCAE."""

from repro.bench import fig9, table5


def test_bench_table5(benchmark, attach_rows):
    result = benchmark.pedantic(table5.run, kwargs={"scale": 0.25},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    # Scientific assertions ride along with the timing.
    for row_index in range(6):
        assert result.cell(row_index, "V=64") > result.cell(row_index, "CPU")


def test_bench_fig9(benchmark, attach_rows):
    result = benchmark.pedantic(fig9.run, kwargs={"scale": 0.25},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    ratios = result.column("V=64")
    assert ratios[-1] > ratios[0]
