"""Failure injection: corrupted files, protocol violations, bad inputs
must surface as typed errors, never as silent wrong answers."""

import pytest

from repro.errors import (
    CorruptionError,
    FpgaProtocolError,
    NotFoundError,
    ReproError,
)
from repro.fpga.config import CONFIG_2_INPUT
from repro.fpga.decoder import SSTableLayout
from repro.fpga.dram import Dram
from repro.fpga.engine import CompactionEngine
from repro.lsm import LsmDB
from repro.lsm.env import MemEnv
from repro.lsm.filenames import table_file_name
from repro.lsm.internal import InternalKeyComparator
from repro.util.comparator import BytewiseComparator

from tests.conftest import build_table_image, make_entries

ICMP = InternalKeyComparator(BytewiseComparator())


def _flip_byte(env, path: str, offset: int) -> None:
    data = bytearray(env.read_file(path))
    data[offset] ^= 0xFF
    handle = env.new_writable_file(path)
    handle.append(bytes(data))
    handle.close()


class TestCorruptedTables:
    def _db_with_table(self, options):
        env = MemEnv()
        db = LsmDB("cdb", options, env=env)
        for i in range(300):
            db.put(f"k{i:010d}".encode(), b"v" * 40)
        db.flush()
        number = db.versions.current.files[0][0].number
        return db, env, table_file_name("cdb", number)

    def test_corrupt_data_block_detected_on_read(self, options):
        db, env, path = self._db_with_table(options)
        db._readers.clear()          # force a re-read from "disk"
        if db.block_cache:
            db.block_cache.clear()
        _flip_byte(env, path, 100)   # inside the first data block
        with pytest.raises(ReproError):
            # Either the CRC or the key lookup notices; never a wrong value.
            db.get(b"k0000000005")

    def test_corrupt_footer_detected_at_open(self, options):
        db, env, path = self._db_with_table(options)
        db._readers.clear()
        size = env.file_size(path)
        _flip_byte(env, path, size - 2)  # magic number
        with pytest.raises(CorruptionError):
            db.get(b"k0000000005")

    def test_all_errors_are_repro_errors(self):
        assert issubclass(CorruptionError, ReproError)
        assert issubclass(NotFoundError, ReproError)
        assert issubclass(FpgaProtocolError, ReproError)


class TestCorruptedManifest:
    def test_flipped_manifest_record_ignored(self, options):
        env = MemEnv()
        db = LsmDB("mdb", options, env=env)
        for i in range(200):
            db.put(f"k{i:08d}".encode(), b"x" * 30)
        db.flush()
        db.close()
        manifest = next(n for n in env.list_dir("mdb")
                        if n.startswith("MANIFEST"))
        # Damage the manifest's CRC: recovery must treat it as empty
        # rather than load garbage metadata.
        _flip_byte(env, f"mdb/{manifest}", 20)
        db2 = LsmDB("mdb", options, env=env)
        # The store opens (no crash); flushed data referenced only by the
        # damaged manifest is unreachable — a detected, not silent, loss.
        assert db2.versions.current.total_bytes() == 0


class TestEngineProtocol:
    def test_data_block_outside_region_rejected(self, plain_options):
        entries = make_entries(100)
        image = build_table_image(entries, plain_options, ICMP)
        engine = CompactionEngine(CONFIG_2_INPUT, plain_options)
        dram = Dram(size=1 << 22)
        dram.write(0, image)
        # Lie about the data region size: handles now point past it.
        from repro.host.memory import extract_index_image
        from repro.lsm.sstable import TableReader
        reader = TableReader(image, ICMP, plain_options)
        index = extract_index_image(image, reader)
        dram.write(len(image) + 64, index)
        bad_layout = SSTableLayout(index_offset=len(image) + 64,
                                   index_size=len(index),
                                   data_offset=0, data_size=128)
        with pytest.raises(FpgaProtocolError):
            engine.run(dram, [[bad_layout]])

    def test_corrupt_block_crc_detected_in_decoder(self, plain_options):
        entries = make_entries(200)
        image = bytearray(build_table_image(entries, plain_options, ICMP))
        image[50] ^= 0xFF
        engine = CompactionEngine(CONFIG_2_INPUT, plain_options)
        with pytest.raises(ReproError):
            engine.run_on_images([[bytes(image)]])


class TestWalTornWrite:
    def test_mid_record_truncation_keeps_prefix(self, options):
        env = MemEnv()
        db = LsmDB("wdb", options, env=env)
        for i in range(20):
            db.put(f"k{i:04d}".encode(), f"v{i}".encode())
        db.close()
        log = next(n for n in env.list_dir("wdb") if n.endswith(".log"))
        data = env.read_file(f"wdb/{log}")
        handle = env.new_writable_file(f"wdb/{log}")
        handle.append(data[:len(data) // 2])
        handle.close()
        db2 = LsmDB("wdb", options, env=env)
        # Some prefix of the writes survives, in order, no corruption.
        survivors = dict(db2.scan())
        count = len(survivors)
        assert 0 < count < 20
        for i in range(count):
            assert survivors[f"k{i:04d}".encode()] == f"v{i}".encode()
