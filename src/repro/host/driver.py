"""Background compaction driver: the paper's Compaction Units as threads.

:class:`CompactionDriver` decouples :class:`repro.lsm.db.LsmDB`'s write
path from maintenance.  A full memtable is swapped out under the DB mutex
and a *flush token* is queued for the flush worker; merge compactions are
fed to ``num_units`` unit workers through a **bounded task queue** whose
capacity equals ``num_units`` — the software picture of the paper's
multiple Compaction Units, where at most ``num_units`` merge tasks can be
outstanding on the card and further demand simply waits (the version
set's scores keep re-kicking until no level is over budget).

Scheduling protocol (all shared state is guarded by the DB mutex):

* ``kick`` enqueues a compaction token iff the queue has a free slot
  (``put_nowait``); a dropped kick is harmless because every completion
  re-kicks while ``needs_compaction()`` holds.
* A unit worker picks its :class:`CompactionSpec` **at execution time**
  under the mutex — never from the token — so it always sees the current
  version.  Files of in-flight compactions are tracked in a busy-set;
  any pick that touches a busy file is discarded (the pick is retried on
  the next kick), which keeps concurrent unit outputs disjoint.
* Completions install their version edit under the mutex (inside
  ``LsmDB.run_compaction``), notify throttled writers, and re-kick.

Failures never reach a writer as an exception from ``put``: a worker
records the first error via ``LsmDB._set_background_error_locked`` and the
write path surfaces it as :class:`~repro.errors.DBStateError`.  Device
faults normally never get that far — the scheduler's retry/fallback
absorbs them (see :mod:`repro.host.scheduler`).
"""

from __future__ import annotations

import queue
import threading
import time

from repro.analysis import watchdog as lockwatch
from repro.lsm.options import L0_STOP_TRIGGER
from repro.lsm.version import CompactionSpec
from repro.obs.names import DriverMetrics

#: Level value for "no level preference" (the L0 stall path enqueues
#: ``0`` to force level-0 relief).  Queue tokens are ``(level,
#: trace_context)`` tuples so the trace minted at the kicking write
#: follows the task onto the worker thread.
_ANY_LEVEL = -1


class CompactionDriver:
    """Flush worker + ``num_units`` compaction unit workers for one DB."""

    def __init__(self, db, num_units: int = 1):
        if num_units < 1:
            raise ValueError("num_units must be >= 1")
        self.db = db
        self.num_units = num_units
        self._tasks: queue.Queue[tuple] = queue.Queue(maxsize=num_units)
        self._flush_q: queue.Queue[tuple] = queue.Queue(maxsize=1)
        self._stop = threading.Event()
        self._closed = False
        #: File numbers owned by in-flight compactions (DB mutex held).
        self._busy: set[int] = set()
        #: Lazily created pool for sub-compaction partitions.
        self._partition_pool = None
        self._pool_lock = lockwatch.make_lock("driver.pool")
        self._m = DriverMetrics(db.metrics,
                                inst=db.metrics.instance_label())
        self._threads = [
            threading.Thread(target=self._flush_loop,
                             name=f"{db.dbname}-flush", daemon=True)
        ] + [
            threading.Thread(target=self._unit_loop, args=(unit,),
                             name=f"{db.dbname}-unit{unit}", daemon=True)
            for unit in range(num_units)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission (called with the DB mutex held, except from workers)
    # ------------------------------------------------------------------

    def kick(self, level: int | None = None, ctx=None) -> None:
        """Queue one compaction token; drops silently when the unit
        queue is full (a later completion re-kicks).  ``ctx`` is a
        :class:`repro.obs.TraceContext` the worker re-activates, so the
        compaction's spans stitch under the kicking write's trace."""
        if self._stop.is_set() or self._closed:
            return
        try:
            self._tasks.put_nowait(
                (_ANY_LEVEL if level is None else level, ctx))
        except queue.Full:
            return
        self._m.queue_depth.set(self._tasks.qsize())

    def kick_flush(self, ctx=None) -> None:
        """Queue the flush token (idempotent: one immutable memtable)."""
        if self._stop.is_set() or self._closed:
            return
        try:
            self._flush_q.put_nowait((0, ctx))
        except queue.Full:
            pass

    def idle(self) -> bool:
        """True when no task is queued or executing (both queues track
        in-flight work via ``task_done``)."""
        return (self._tasks.unfinished_tasks == 0
                and self._flush_q.unfinished_tasks == 0)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _next(self, source: queue.Queue):
        """Block for the next token; ``None`` means shut down (stop set
        and the queue fully drained)."""
        while True:
            try:
                return source.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return None

    def _flush_loop(self) -> None:
        db = self.db
        while True:
            token = self._next(self._flush_q)
            if token is None:
                return
            _, ctx = token
            self._m.tasks["flush"].inc()
            try:
                with db.tracer.activate(ctx):
                    db._background_flush()
            except Exception as error:  # noqa: BLE001 — reported, not lost
                with db._mutex:
                    db._set_background_error_locked(error)
            finally:
                self._flush_q.task_done()
                with db._mutex:
                    db._cond.notify_all()

    def _unit_loop(self, unit: int) -> None:
        db = self.db
        while True:
            token = self._next(self._tasks)
            if token is None:
                return
            level, ctx = token
            self._m.queue_depth.set(self._tasks.qsize())
            try:
                with db.tracer.activate(ctx):
                    self._run_one(None if level == _ANY_LEVEL else level)
            except Exception as error:  # noqa: BLE001 — reported, not lost
                with db._mutex:
                    db._set_background_error_locked(error)
            finally:
                self._tasks.task_done()
                with db._mutex:
                    db._cond.notify_all()

    def _run_one(self, level_hint: int | None) -> None:
        """Pick under the mutex, merge outside it, install inside it."""
        db = self.db
        with db._mutex:
            if db._closed or db._bg_error is not None:
                return
            spec = self._pick_locked(level_hint)
            if spec is None:
                return
            for meta in spec.inputs + spec.parents:
                self._busy.add(meta.number)
        try:
            self._m.tasks["compaction"].inc()
            db.run_compaction(spec)
        finally:
            with db._mutex:
                for meta in spec.inputs + spec.parents:
                    self._busy.discard(meta.number)
        if db.versions.needs_compaction():
            # Still inside the worker's activated context: a cascading
            # compaction stays on the trace that triggered this one.
            self.kick(ctx=db.tracer.current_context())

    def _pick_locked(self, level_hint: int | None) -> CompactionSpec | None:
        """Choose a compaction for the current version (DB mutex held).

        An explicit level-0 hint (or L0 at the stop trigger) prefers a
        forced level-0 compaction so stalled writers unblock; otherwise
        the version set's score-based pick decides.  Picks overlapping
        the busy-set are discarded — the files are already being
        compacted and their completion re-kicks.
        """
        versions = self.db.versions
        l0_files = versions.current.num_files(0)
        if (level_hint == 0 or l0_files >= L0_STOP_TRIGGER) and l0_files:
            spec = versions.pick_compaction(level=0)
            if spec is not None and not self._overlaps_busy(spec):
                return spec
        if not versions.needs_compaction():
            return None
        spec = versions.pick_compaction()
        if spec is None or self._overlaps_busy(spec):
            return None
        return spec

    def _overlaps_busy(self, spec: CompactionSpec) -> bool:
        return any(meta.number in self._busy
                   for meta in spec.inputs + spec.parents)

    # ------------------------------------------------------------------
    # Sub-compaction dispatch
    # ------------------------------------------------------------------

    def map_partitions(self, tasks: list) -> list:
        """Run sub-compaction partition merges across the units.

        ``tasks`` are zero-argument callables (one per key-range
        partition, see :func:`repro.lsm.subcompaction.subcompact`);
        results come back in task order.  Partitions share a pool of
        ``num_units`` threads, so a partitioned merge occupies the same
        parallel width as the paper's multiple Compaction Units.
        """
        if len(tasks) <= 1:
            return [task() for task in tasks]
        with self._pool_lock:
            if self._partition_pool is None:
                from concurrent.futures import ThreadPoolExecutor
                self._partition_pool = ThreadPoolExecutor(
                    max_workers=self.num_units,
                    thread_name_prefix=f"{self.db.dbname}-part")
            pool = self._partition_pool
        return [future.result()
                for future in [pool.submit(task) for task in tasks]]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Drain pending work, then stop the workers.

        Must be called *without* the DB mutex (workers need it to
        finish).  Gives up draining on a background error or after
        ``timeout`` seconds; the workers are daemons either way.
        """
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self.db._mutex:
                bg_error = self.db._bg_error
                imm_pending = self.db._imm is not None
            if bg_error is not None:
                break
            if imm_pending:
                # Re-queue directly: self._closed suppresses kick_flush.
                try:
                    self._flush_q.put_nowait((0, None))
                except queue.Full:
                    pass
            elif self.idle():
                break
            time.sleep(0.005)
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        with self._pool_lock:
            if self._partition_pool is not None:
                self._partition_pool.shutdown(wait=False)
                self._partition_pool = None

    def __repr__(self) -> str:
        return (f"CompactionDriver(units={self.num_units}, "
                f"queued={self._tasks.qsize()}, busy={len(self._busy)})")
