"""YCSB workload definitions and the runner against a real LsmDB."""

import pytest

from repro.errors import InvalidArgumentError
from repro.lsm import LsmDB, Options
from repro.lsm.env import MemEnv
from repro.workloads.ycsb import (
    YCSB_WORKLOADS,
    YcsbOp,
    YcsbWorkload,
    YcsbWorkloadRunner,
    ycsb_key,
)


class TestWorkloadTable:
    def test_paper_table_ix_mixes(self):
        assert YCSB_WORKLOADS["load"].insert_fraction == 1.0
        assert YCSB_WORKLOADS["a"].read_fraction == 0.5
        assert YCSB_WORKLOADS["a"].update_fraction == 0.5
        assert YCSB_WORKLOADS["b"].read_fraction == 0.95
        assert YCSB_WORKLOADS["c"].read_fraction == 1.0
        assert YCSB_WORKLOADS["d"].distribution == "latest"
        assert YCSB_WORKLOADS["e"].scan_fraction == 0.95
        assert YCSB_WORKLOADS["f"].rmw_fraction == 0.5

    def test_write_fractions(self):
        assert YCSB_WORKLOADS["load"].write_fraction == 1.0
        assert YCSB_WORKLOADS["c"].write_fraction == 0.0
        assert YCSB_WORKLOADS["a"].write_fraction == 0.5

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(InvalidArgumentError):
            YcsbWorkload("bad", read_fraction=0.5)


class TestKeys:
    def test_key_format(self):
        key = ycsb_key(7, key_length=16)
        assert key.startswith(b"user")
        assert len(key) == 16

    def test_keys_distinct(self):
        keys = {ycsb_key(i) for i in range(10_000)}
        assert len(keys) == 10_000


class TestRunnerGeneration:
    def test_load_ops_count_and_size(self):
        runner = YcsbWorkloadRunner(YCSB_WORKLOADS["load"], 100,
                                    value_length=64)
        ops = list(runner.load_ops())
        assert len(ops) == 100
        assert all(op is YcsbOp.INSERT for op, _, _ in ops)
        assert all(len(value) == 64 for _, _, value in ops)

    def test_transaction_mix_matches_workload(self):
        runner = YcsbWorkloadRunner(YCSB_WORKLOADS["a"], 1000, seed=4)
        ops = [op for op, *_ in runner.transactions(4000)]
        reads = sum(op is YcsbOp.READ for op in ops)
        updates = sum(op is YcsbOp.UPDATE for op in ops)
        assert reads + updates == 4000
        assert 0.4 < reads / 4000 < 0.6

    def test_scan_lengths_bounded(self):
        runner = YcsbWorkloadRunner(YCSB_WORKLOADS["e"], 1000, seed=5)
        for op, _, _, scan_len in runner.transactions(500):
            if op is YcsbOp.SCAN:
                assert 1 <= scan_len <= 100

    def test_inserts_extend_keyspace(self):
        runner = YcsbWorkloadRunner(YCSB_WORKLOADS["d"], 100, seed=6)
        inserted_before = runner._inserted
        list(runner.transactions(200))
        assert runner._inserted > inserted_before


class TestRunnerAgainstDb:
    def test_load_then_mixed_run(self):
        options = Options(write_buffer_size=32 * 1024,
                          sstable_size=16 * 1024, compression="none",
                          value_length=64, bloom_bits_per_key=0)
        db = LsmDB("ycsb", options, env=MemEnv())
        runner = YcsbWorkloadRunner(YCSB_WORKLOADS["a"], 300,
                                    value_length=64, seed=7)
        assert runner.load(db) == 300
        counters = runner.run(db, 400)
        assert counters["read"] + counters["update"] == 400
        # Every key the loader wrote must be readable.
        assert db.get(runner.key_for(123)) is not None

    def test_workload_f_rmw(self):
        options = Options(write_buffer_size=32 * 1024,
                          sstable_size=16 * 1024, compression="none",
                          value_length=64, bloom_bits_per_key=0)
        db = LsmDB("ycsbf", options, env=MemEnv())
        runner = YcsbWorkloadRunner(YCSB_WORKLOADS["f"], 200,
                                    value_length=64, seed=8)
        runner.load(db)
        counters = runner.run(db, 300)
        assert counters["rmw"] > 0
        assert counters["not_found"] == 0

    def test_workload_e_scans(self):
        options = Options(write_buffer_size=32 * 1024,
                          sstable_size=16 * 1024, compression="none",
                          value_length=64, bloom_bits_per_key=0)
        db = LsmDB("ycsbe", options, env=MemEnv())
        runner = YcsbWorkloadRunner(YCSB_WORKLOADS["e"], 200,
                                    value_length=64, seed=9)
        runner.load(db)
        counters = runner.run(db, 100)
        assert counters["scan"] > 50
