"""Finding model + waiver parsing shared by every static pass.

A finding is one rule violation at one source location.  Waivers are
inline comments of the form::

    some_call()  # lint: waive[LD003] fsync cost is the sync-mode contract

A waiver applies to findings of that rule on the same line.  In strict
mode a waiver without a reason is itself an error.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "extract_comments",
    "parse_waivers",
    "apply_waivers",
    "render_text",
    "to_json",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_WAIVE_RE = re.compile(r"#\s*lint:\s*waive\[([A-Z]{2}\d{3})\]\s*(.*)")


@dataclass
class Finding:
    rule: str           # "LD001", "CT002", ...
    slug: str           # "unguarded-locked-call"
    path: str
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR
    waived: bool = False
    waive_reason: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class Waiver:
    rule: str
    line: int
    reason: str
    used: bool = False


def extract_comments(source: str) -> Dict[int, List[str]]:
    """line number -> comment strings on that line.  Tokenize-based so
    ``#`` inside string literals never parses as a comment."""
    comments: Dict[int, List[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.setdefault(tok.start[0], []).append(tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_waivers(comments: Dict[int, List[str]]) -> List[Waiver]:
    waivers: List[Waiver] = []
    for line, texts in comments.items():
        for text in texts:
            match = _WAIVE_RE.search(text)
            if match:
                waivers.append(Waiver(rule=match.group(1), line=line,
                                      reason=match.group(2).strip()))
    return waivers


def apply_waivers(findings: Iterable[Finding],
                  waivers: List[Waiver]) -> List[Finding]:
    """Mark findings matched by a same-line same-rule waiver."""
    by_key: Dict[Tuple[str, int], Waiver] = {
        (w.rule, w.line): w for w in waivers}
    out = []
    for finding in findings:
        waiver = by_key.get((finding.rule, finding.line))
        if waiver is not None:
            finding.waived = True
            finding.waive_reason = waiver.reason
            waiver.used = True
        out.append(finding)
    return out


def render_text(findings: List[Finding]) -> str:
    lines = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        tag = f.severity
        if f.waived:
            tag = f"waived ({f.waive_reason})" if f.waive_reason else "waived"
        lines.append(f"{f.location()}: {f.rule} [{tag}] {f.message}")
    return "\n".join(lines)


def to_json(findings: List[Finding]) -> str:
    payload = [
        {
            "rule": f.rule,
            "slug": f.slug,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "severity": f.severity,
            "message": f.message,
            "waived": f.waived,
            "waive_reason": f.waive_reason,
        }
        for f in sorted(findings,
                        key=lambda f: (f.path, f.line, f.col, f.rule))
    ]
    return json.dumps(payload, indent=2, sort_keys=True)
