"""Fig 15 — sensitivity of LevelDB-FCAE to LevelDB settings.

Four sweeps over the paper's Table IV ranges, one parameter at a time
with the others at defaults (multi-input FCAE, 1 GB fillrandom):

* (a) key length 16-256 B — speedup decreases as keys grow (every
  FPGA module's period scales with L_key);
* (b) value length 64-2048 B — speedup increases (same as Fig 11);
* (c) data block size 2 KB-1 MB — both systems flat, ratio steady;
* (d) leveling ratio 4-16 — speedup decreases (larger ratios compact
  less often, so the FPGA gets less chance to help).
"""

from __future__ import annotations

from repro.bench.common import ExperimentResult, N9_CONFIG, scale_bytes
from repro.lsm.options import Options
from repro.sim.system import SystemConfig, simulate_fillrandom

DATA_SIZE = 1 << 30

KEY_LENGTHS = (16, 32, 64, 128, 256)
VALUE_LENGTHS = (64, 128, 256, 512, 1024, 2048)
BLOCK_SIZES_KB = (2, 4, 16, 64, 256, 1024)
LEVELING_RATIOS = (4, 6, 8, 10, 12, 14, 16)


def _point(options: Options, scale: float) -> tuple[float, float]:
    nbytes = scale_bytes(DATA_SIZE, scale)
    base = simulate_fillrandom(SystemConfig(
        mode="leveldb", options=options, data_size_bytes=nbytes))
    fcae = simulate_fillrandom(SystemConfig(
        mode="fcae", options=options, fpga=N9_CONFIG,
        data_size_bytes=nbytes))
    return base.throughput_mbps, fcae.throughput_mbps


def _sweep(name: str, title: str, column: str, values, make_options,
           scale: float) -> ExperimentResult:
    result = ExperimentResult(
        name=name, title=title,
        columns=[column, "LevelDB_MBps", "FCAE_MBps", "speedup"])
    for value in values:
        base, fcae = _point(make_options(value), scale)
        result.add_row(value, base, fcae, fcae / base)
    return result


def run_a(scale: float = 1.0) -> ExperimentResult:
    return _sweep(
        "Fig 15(a)", "Speedup vs key length (value=128)", "key_B",
        KEY_LENGTHS, lambda k: Options(key_length=k, value_length=128),
        scale)


def run_b(scale: float = 1.0) -> ExperimentResult:
    return _sweep(
        "Fig 15(b)", "Speedup vs value length", "value_B",
        VALUE_LENGTHS, lambda v: Options(value_length=v), scale)


def run_c(scale: float = 1.0) -> ExperimentResult:
    return _sweep(
        "Fig 15(c)", "Throughput vs data block size", "block_KB",
        BLOCK_SIZES_KB,
        lambda kb: Options(block_size=kb * 1024,
                           sstable_size=max(2 * 1024 * 1024, kb * 1024 * 2)),
        scale)


def run_d(scale: float = 1.0) -> ExperimentResult:
    return _sweep(
        "Fig 15(d)", "Speedup vs leveling ratio", "ratio",
        LEVELING_RATIOS, lambda r: Options(leveling_ratio=r), scale)


def run(scale: float = 1.0) -> ExperimentResult:
    """Condensed view: one row per sub-figure with its trend."""
    parts = [run_a(scale), run_b(scale), run_c(scale), run_d(scale)]
    result = ExperimentResult(
        name="Fig 15",
        title="LevelDB settings sensitivity (speedup at sweep endpoints)",
        columns=["sweep", "first_point", "first_speedup", "last_point",
                 "last_speedup", "trend"],
    )
    for part in parts:
        speedups = part.column("speedup")
        first, last = speedups[0], speedups[-1]
        if abs(last - first) < 0.15 * max(first, last):
            trend = "flat"
        else:
            trend = "decreasing" if last < first else "increasing"
        result.add_row(part.name, part.rows[0][0], first,
                       part.rows[-1][0], last, trend)
    result.notes.append(
        "paper trends: (a) decreasing, (b) increasing, (c) flat ~2.4x, "
        "(d) decreasing")
    return result
