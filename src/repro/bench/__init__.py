"""Benchmark harness: one module per table/figure of the paper's §VII.

Every module exposes ``run(scale=1.0) -> ExperimentResult`` returning the
same rows/series the paper reports.  ``python -m repro.bench <name>``
prints one experiment; ``python -m repro.bench all`` regenerates the full
evaluation and the EXPERIMENTS.md comparison tables.

=========  ==========================================================
target     reproduces
=========  ==========================================================
table5     compaction speed, CPU vs 2-input FCAE, L_value x V
fig9       acceleration ratios of Table V
fig10      write throughput vs data size (0.2-2 GB)
table6     write throughput, L_value x V
fig11      acceleration ratios of Table VI
table7     FPGA resource utilization per (N, W_in, V)
fig12      compaction speed, 2-input vs 9-input
fig13      acceleration ratios of Fig 12
fig14      write throughput vs data size (0.2-1024 GB), 9-input
table8     PCIe transfer share of system time
fig15a-d   sensitivity: key length, value length, block size, ratio
fig16      YCSB workloads
ablation   (extra) pipeline-variant ladder: §V's optimizations
=========  ==========================================================
"""

from repro.bench.common import ExperimentResult

__all__ = ["ExperimentResult"]
