"""Snappy codec: format details, round-trips, corruption rejection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import snappy
from repro.errors import CorruptionError
from repro.util.varint import decode_varint32


class TestFormat:
    def test_empty_input(self):
        compressed = snappy.compress(b"")
        assert snappy.decompress(compressed) == b""
        assert compressed == b"\x00"

    def test_preamble_is_uncompressed_length(self):
        data = b"abcdefgh" * 10
        compressed = snappy.compress(data)
        length, _ = decode_varint32(compressed, 0)
        assert length == len(data)

    def test_single_byte(self):
        assert snappy.decompress(snappy.compress(b"x")) == b"x"

    def test_incompressible_close_to_raw(self):
        import random
        data = bytes(random.Random(5).randrange(256) for _ in range(1000))
        compressed = snappy.compress(data)
        assert len(compressed) <= snappy.max_compressed_length(len(data))
        assert snappy.decompress(compressed) == data

    def test_repetitive_compresses_well(self):
        data = b"the quick brown fox " * 500
        compressed = snappy.compress(data)
        assert len(compressed) < len(data) // 4
        assert snappy.decompress(compressed) == data

    def test_run_of_one_byte(self):
        # Overlapping copy (offset 1) path.
        data = b"a" * 10_000
        compressed = snappy.compress(data)
        # ~3 bytes per 64-byte copy element.
        assert len(compressed) < 600
        assert snappy.decompress(compressed) == data

    def test_long_match_split_into_copies(self):
        data = b"0123456789abcdef" * 100
        assert snappy.decompress(snappy.compress(data)) == data

    def test_crosses_fragment_boundary(self):
        data = (b"pattern-" * 9000) + bytes(range(256)) * 300
        assert len(data) > 65536 * 2
        assert snappy.decompress(snappy.compress(data)) == data

    def test_literal_length_escape_60(self):
        # > 60-byte incompressible literal uses the 1-byte length escape.
        import random
        data = bytes(random.Random(7).randrange(256) for _ in range(100))
        assert snappy.decompress(snappy.compress(data)) == data


class TestDecompressHandwritten:
    def test_pure_literal(self):
        # length 5 literal "hello": tag (5-1)<<2, then bytes.
        raw = bytes([5]) + bytes([(5 - 1) << 2]) + b"hello"
        assert snappy.decompress(raw) == b"hello"

    def test_copy1(self):
        # "abcd" then copy len=4 offset=4 -> "abcdabcd"
        body = bytes([(4 - 1) << 2]) + b"abcd"
        copy = bytes([0b01 | ((4 - 4) << 2) | (0 << 5), 4])
        raw = bytes([8]) + body + copy
        assert snappy.decompress(raw) == b"abcdabcd"

    def test_copy2(self):
        body = bytes([(4 - 1) << 2]) + b"wxyz"
        copy = bytes([0b10 | ((4 - 1) << 2)]) + (4).to_bytes(2, "little")
        raw = bytes([8]) + body + copy
        assert snappy.decompress(raw) == b"wxyzwxyz"

    def test_overlapping_copy(self):
        # "ab" then copy len=6 offset=2 -> "abababab"
        body = bytes([(2 - 1) << 2]) + b"ab"
        copy = bytes([0b01 | ((6 - 4) << 2) | (0 << 5), 2])
        raw = bytes([8]) + body + copy
        assert snappy.decompress(raw) == b"abababab"


class TestCorruption:
    def test_length_mismatch(self):
        raw = bytes([10]) + bytes([(5 - 1) << 2]) + b"hello"
        with pytest.raises(CorruptionError):
            snappy.decompress(raw)

    def test_truncated_literal(self):
        raw = bytes([5]) + bytes([(5 - 1) << 2]) + b"he"
        with pytest.raises(CorruptionError):
            snappy.decompress(raw)

    def test_copy_offset_zero(self):
        raw = bytes([4]) + bytes([0b01 | (0 << 2), 0])
        with pytest.raises(CorruptionError):
            snappy.decompress(raw)

    def test_copy_offset_beyond_output(self):
        body = bytes([(2 - 1) << 2]) + b"ab"
        copy = bytes([0b01 | (0 << 2), 50])
        raw = bytes([6]) + body + copy
        with pytest.raises(CorruptionError):
            snappy.decompress(raw)

    def test_truncated_copy_offset(self):
        raw = bytes([4]) + bytes([0b10 | ((4 - 1) << 2), 0x01])
        with pytest.raises(CorruptionError):
            snappy.decompress(raw)


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=4096))
def test_roundtrip_property(data):
    assert snappy.decompress(snappy.compress(data)) == data


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from([b"abc", b"hello world", b"x" * 40, b"q"]),
                max_size=200))
def test_roundtrip_repetitive_property(parts):
    data = b"".join(parts)
    compressed = snappy.compress(data)
    assert snappy.decompress(compressed) == data
    assert len(compressed) <= snappy.max_compressed_length(len(data))
