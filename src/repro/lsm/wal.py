"""Write-ahead log in LevelDB's record format.

The log is a sequence of 32 KB blocks.  Each record fragment carries a
7-byte header — masked CRC32C (4), payload length (2), fragment type (1) —
and records that straddle block boundaries are split into
FIRST/MIDDLE/.../LAST fragments.  A block's trailing <7 bytes are zero
padding.

Recovery replays every intact record and stops at the first corruption or
truncation, which is exactly what a crash mid-append should look like.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CorruptionError
from repro.lsm.env import WritableFile
from repro.util.coding import decode_fixed32, encode_fixed32
from repro.util.crc32c import crc32c, mask_crc, unmask_crc

BLOCK_SIZE = 32768
HEADER_SIZE = 7

FULL = 1
FIRST = 2
MIDDLE = 3
LAST = 4

# CRC of the type byte, pre-extended with payload, matching LevelDB which
# checksums type || payload.
_TYPE_NAMES = {FULL: "FULL", FIRST: "FIRST", MIDDLE: "MIDDLE", LAST: "LAST"}


class LogWriter:
    """Appends length-prefixed, checksummed records to a writable file."""

    def __init__(self, dest: WritableFile):
        self._dest = dest
        # Seed from the destination so appending to a non-empty log
        # (reopened segment) keeps fragment/padding accounting aligned
        # with the 32 KB block grid the reader walks.
        self._block_offset = dest.size % BLOCK_SIZE

    def add_record(self, data: bytes) -> None:
        """Append one record (possibly fragmented across blocks)."""
        left = len(data)
        pos = 0
        begin = True
        while True:
            leftover = BLOCK_SIZE - self._block_offset
            if leftover < HEADER_SIZE:
                # Pad the tail of the block and start a fresh one.
                if leftover > 0:
                    self._dest.append(b"\x00" * leftover)
                self._block_offset = 0
                leftover = BLOCK_SIZE
            available = leftover - HEADER_SIZE
            fragment = min(left, available)
            end = left == fragment
            if begin and end:
                record_type = FULL
            elif begin:
                record_type = FIRST
            elif end:
                record_type = LAST
            else:
                record_type = MIDDLE
            self._emit(record_type, data[pos:pos + fragment])
            pos += fragment
            left -= fragment
            begin = False
            if left <= 0:
                break

    def _emit(self, record_type: int, payload: bytes) -> None:
        crc = mask_crc(crc32c(bytes([record_type]) + payload))
        header = (encode_fixed32(crc)
                  + len(payload).to_bytes(2, "little")
                  + bytes([record_type]))
        self._dest.append(header + payload)
        self._block_offset += HEADER_SIZE + len(payload)

    def flush(self) -> None:
        self._dest.flush()

    def sync(self) -> None:
        """Flush then fsync the underlying file (the durability point)."""
        self._dest.sync()


class LogReader:
    """Replays records written by :class:`LogWriter`.

    ``strict`` controls what happens on damage: ``True`` raises
    :class:`CorruptionError`; ``False`` stops silently at the first bad
    fragment (crash-recovery semantics).
    """

    def __init__(self, data: bytes, strict: bool = False):
        self._data = data
        self._strict = strict

    def __iter__(self) -> Iterator[bytes]:
        pos = 0
        data = self._data
        pending: bytearray | None = None
        while pos < len(data):
            block_left = BLOCK_SIZE - (pos % BLOCK_SIZE)
            if block_left < HEADER_SIZE:
                pos += block_left  # zero padding
                continue
            if pos + HEADER_SIZE > len(data):
                return  # truncated header: clean EOF
            stored_crc = unmask_crc(decode_fixed32(data, pos))
            length = int.from_bytes(data[pos + 4:pos + 6], "little")
            record_type = data[pos + 6]
            if record_type == 0 and length == 0:
                # Zeroed region (preallocated space); treat as EOF.
                return
            payload_start = pos + HEADER_SIZE
            payload_end = payload_start + length
            if payload_end > len(data):
                self._fail("truncated record payload")
                return
            payload = data[payload_start:payload_end]
            if crc32c(bytes([record_type]) + payload) != stored_crc:
                self._fail("bad record CRC")
                return
            pos = payload_end
            if record_type == FULL:
                if pending is not None:
                    self._fail("FULL record inside fragmented record")
                    pending = None
                yield bytes(payload)
            elif record_type == FIRST:
                if pending is not None:
                    self._fail("FIRST record inside fragmented record")
                pending = bytearray(payload)
            elif record_type == MIDDLE:
                if pending is None:
                    self._fail("MIDDLE record without FIRST")
                    continue
                pending += payload
            elif record_type == LAST:
                if pending is None:
                    self._fail("LAST record without FIRST")
                    continue
                pending += payload
                yield bytes(pending)
                pending = None
            else:
                self._fail(f"unknown record type {record_type}")
                return

    def _fail(self, message: str) -> None:
        if self._strict:
            raise CorruptionError(message)
