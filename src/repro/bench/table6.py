"""Table VI — end-to-end write throughput (MB/s), L_value x V grid.

db_bench fillrandom over 1 GB through the system simulator; 2-input FCAE
with W_in = W_out = 64 (§VII-B2b).
"""

from __future__ import annotations

from repro.bench.common import (
    VALUE_LENGTHS,
    VALUE_WIDTHS,
    ExperimentResult,
    scale_bytes,
    two_input_config,
)
from repro.lsm.options import Options
from repro.sim.system import SystemConfig, simulate_fillrandom

PAPER = {
    64: (2.4, 5.6, 5.4, 5.6, 5.4),
    128: (2.9, 6.5, 7.7, 7.6, 7.6),
    256: (2.5, 5.8, 7.1, 7.2, 7.2),
    512: (2.8, 6.0, 9.1, 9.6, 9.3),
    1024: (2.3, 6.7, 9.8, 11.0, 11.6),
    2048: (2.3, 10.9, 12.3, 14.1, 14.4),
}

DATA_SIZE = 1 << 30


def run(scale: float = 1.0) -> ExperimentResult:
    nbytes = scale_bytes(DATA_SIZE, scale)
    result = ExperimentResult(
        name="Table VI",
        title="Write throughput (MB/s) with different value length and V",
        columns=["L_value", "LevelDB", "V=8", "V=16", "V=32", "V=64",
                 "paper_LevelDB", "paper_V=64"],
    )
    for value_length in VALUE_LENGTHS:
        options = Options(value_length=value_length)
        base = simulate_fillrandom(SystemConfig(
            mode="leveldb", options=options, data_size_bytes=nbytes))
        speeds = []
        for value_width in VALUE_WIDTHS:
            fcae = simulate_fillrandom(SystemConfig(
                mode="fcae", options=options,
                fpga=two_input_config(value_width),
                data_size_bytes=nbytes))
            speeds.append(fcae.throughput_mbps)
        paper = PAPER[value_length]
        result.add_row(value_length, base.throughput_mbps, *speeds,
                       paper[0], paper[4])
    return result
