"""Trace-context propagation: a span id minted at the write kick flows
through the driver's queue into worker threads, the scheduler and the
device, stitching one compaction's host/DMA/kernel spans under a single
trace id."""

import json

from repro.fpga.resources import best_feasible_config
from repro.host.device import FcaeDevice
from repro.host.scheduler import CompactionScheduler
from repro.lsm.db import LsmDB
from repro.lsm.options import Options
from repro.obs.tracing import Tracer, spans_to_chrome_trace


def small_options(**overrides):
    return Options(block_size=512, sstable_size=8 * 1024,
                   write_buffer_size=16 * 1024,
                   max_level0_size=64 * 1024, compression="none",
                   **overrides)


class TestContextApi:
    def test_mint_inside_span_reuses_its_trace(self):
        tracer = Tracer(keep_spans=True)
        ctx = tracer.mint_context()
        with tracer.activate(ctx):
            with tracer.span("outer") as outer:
                inner_ctx = tracer.mint_context()
        assert outer.trace_id == ctx.trace_id
        assert inner_ctx.trace_id == ctx.trace_id
        assert inner_ctx.span_id == outer.span_id

    def test_activate_adopts_remote_context(self):
        tracer = Tracer(keep_spans=True)
        ctx = tracer.mint_context()
        with tracer.activate(ctx):
            with tracer.span("worker") as span:
                pass
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id

    def test_current_context_falls_back_to_activated(self):
        tracer = Tracer(keep_spans=True)
        ctx = tracer.mint_context()
        assert tracer.current_context() is None
        with tracer.activate(ctx):
            assert tracer.current_context() == ctx

    def test_spans_without_context_carry_no_trace(self):
        tracer = Tracer(keep_spans=True)
        with tracer.span("lonely") as span:
            pass
        assert span.trace_id is None


class TestDriverPropagation:
    def test_background_cascade_shares_one_trace(self):
        """Flushes kicked by the writer and the compactions they cascade
        into all land on a trace minted at the write kick."""
        tracer = Tracer(keep_spans=True)
        db = LsmDB("tracedb", small_options(), tracer=tracer,
                   auto_compact=False, background_compaction=True,
                   num_units=2)
        for i in range(3000):
            db.put(f"k{i % 1200:08d}".encode(), b"v" * 64)
        db.compact_range()
        db.close()

        compactions = [s for s in tracer.spans if s.name == "compaction"]
        flushes = [s for s in tracer.spans if s.name == "flush"]
        assert compactions and flushes
        for span in compactions + flushes:
            assert span.trace_id is not None, \
                f"{span.name} span lost its trace context"

    def test_fpga_compaction_spans_under_one_trace(self, tmp_path):
        """The acceptance check: one offloaded compaction's route and
        host/DMA/kernel phase spans share a single propagated trace id,
        visible in the Chrome-trace export."""
        tracer = Tracer(keep_spans=True)
        device = FcaeDevice(best_feasible_config(2), small_options())
        scheduler = CompactionScheduler(device, small_options(),
                                        tracer=tracer)
        db = LsmDB("fpgadb", small_options(), tracer=tracer,
                   compaction_executor=scheduler, auto_compact=False)
        # Two non-overlapping L0 files -> a 2-stream pick the N=2 engine
        # accepts.
        for i in range(500):
            db.put(f"a{i:08d}".encode(), b"v" * 64)
        db.flush()
        for i in range(500):
            db.put(f"b{i:08d}".encode(), b"v" * 64)
        db.flush()
        spec = db.versions.pick_compaction(level=0)
        assert spec is not None
        with db.tracer.activate(db.tracer.mint_context()):
            db.run_compaction(spec)
        db.close()

        compaction = next(s for s in tracer.spans
                          if s.name == "compaction")
        assert compaction.trace_id is not None
        trace = [s for s in tracer.spans
                 if s.trace_id == compaction.trace_id]
        names = {s.name for s in trace}
        assert "compaction.route" in names
        assert any(name.startswith("phase:") for name in names), names
        route = next(s for s in trace if s.name == "compaction.route")
        assert route.attrs["route"] == "fpga-sim"

        chrome = spans_to_chrome_trace([s.to_dict() for s in trace])
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(chrome))
        events = json.loads(path.read_text())["traceEvents"]
        span_events = [e for e in events if e.get("ph") == "X"]
        assert {e["args"].get("trace") for e in span_events} \
            == {compaction.trace_id}
