"""Encoder: Data Block Encoder + Index Block Encoder (paper §V-A/B2).

Surviving pairs are re-encoded into standard SSTables: the **Data Block
Encoder** prefix-compresses keys into 4 KB data blocks (Snappy-compressed
on flush) and streams them to DRAM through the Stream Upsizer; the
**Index Block Encoder** appends one (separator key, block handle) entry
per flushed data block.  With Encoder Separation the index entries go to
DRAM as they are produced instead of parking in BRAM until the table
closes; the host later splices index and data regions into the standard
file layout (its job per §V-B2).

An SSTable closes when its accumulated data size crosses the 2 MB target;
the encoder then records the table's smallest/largest keys for MetaOut
and resets for the next table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.lsm.compaction import OutputTable, _BufferFile
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder


@dataclass
class EncoderStats:
    """Counters for one engine run."""

    pairs_encoded: int = 0
    blocks_flushed: int = 0
    tables_completed: int = 0
    data_bytes_out: int = 0
    index_bytes_out: int = 0
    # BRAM high-water for the buffered index block (bytes); with Encoder
    # Separation this stays one entry deep.
    index_bram_high_water: int = 0


class Encoder:
    """Builds output SSTables from the Transfer module's Keep stream.

    The functional output is bit-identical to the CPU path's — both use
    :class:`TableBuilder` — which is what lets the engine slot under an
    unmodified LevelDB ("no modifications on the original storage
    format").
    """

    def __init__(self, options: Options, comparator: InternalKeyComparator,
                 config: FpgaConfig):
        self._options = options
        self._comparator = comparator
        self._config = config
        self.stats = EncoderStats()
        self.outputs: list[OutputTable] = []
        self._dest: _BufferFile | None = None
        self._builder: TableBuilder | None = None
        self._blocks_before = 0

    def add(self, internal_key: bytes, value: bytes) -> dict:
        """Encode one pair; returns timing-relevant events:
        ``{"block_flushed": bool, "table_completed": bool,
        "block_bytes": int}``."""
        if self._builder is None:
            self._dest = _BufferFile()
            self._builder = TableBuilder(self._options, self._dest,
                                         self._comparator)
            self._blocks_before = 0
        size_before = self._builder.file_size
        self._builder.add(internal_key, value)
        self.stats.pairs_encoded += 1
        events = {"block_flushed": False, "table_completed": False,
                  "block_bytes": 0}
        blocks_now = self._builder.stats.num_data_blocks
        if blocks_now > self._blocks_before:
            events["block_flushed"] = True
            events["block_bytes"] = self._builder.file_size - size_before
            self.stats.blocks_flushed += 1
            self._blocks_before = blocks_now
            if self._config.variant is PipelineVariant.BASIC:
                # Basic design parks the whole index block in BRAM.
                self.stats.index_bram_high_water = max(
                    self.stats.index_bram_high_water, 32 * blocks_now)
            else:
                self.stats.index_bram_high_water = max(
                    self.stats.index_bram_high_water, 32)
        if self._builder.file_size >= self._options.sstable_size:
            self._finish_table()
            events["table_completed"] = True
        return events

    def _finish_table(self) -> None:
        if self._builder is None or self._builder.smallest_key is None:
            self._dest = self._builder = None
            return
        table_stats = self._builder.finish()
        self.outputs.append(OutputTable(
            data=bytes(self._dest.data),
            smallest=self._builder.smallest_key,
            largest=self._builder.largest_key,
            stats=table_stats,
        ))
        self.stats.tables_completed += 1
        self.stats.data_bytes_out += table_stats.data_bytes
        self.stats.index_bytes_out += table_stats.index_bytes
        self._dest = self._builder = None

    def finish(self) -> list[OutputTable]:
        """Close the trailing table and return all outputs."""
        self._finish_table()
        return self.outputs

    def key_service_cycles(self, key_len: int) -> float:
        """Data Block Encoder per-pair cost: ``L_key`` (Table III)."""
        return float(key_len)

    def flush_cycles(self, block_bytes: int) -> float:
        """AXI write time for a flushed block at ``W_out`` bytes/cycle."""
        return block_bytes / self._config.w_out
