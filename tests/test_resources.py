"""Resource estimator vs the paper's Table VII."""

import pytest

from repro.errors import FpgaResourceError
from repro.fpga.config import FpgaConfig
from repro.fpga.engine import CompactionEngine
from repro.fpga.resources import (
    best_feasible_config,
    estimate_for,
    estimate_resources,
)

PAPER_TABLE7 = {
    (2, 64, 16): (18, 10, 72),
    (2, 64, 8): (17, 9, 63),
    (9, 64, 8): (35, 27, 206),
    (9, 16, 16): (30, 18, 125),
    (9, 16, 8): (26, 16, 103),
    (9, 8, 8): (25, 14, 84),
}


class TestFit:
    @pytest.mark.parametrize("config,paper", PAPER_TABLE7.items())
    def test_within_tolerance_of_paper(self, config, paper):
        n, w_in, v = config
        bram, ff, lut = paper
        report = estimate_for(n, w_in, v)
        assert report.bram_pct == pytest.approx(bram, abs=2.5)
        assert report.ff_pct == pytest.approx(ff, abs=2.5)
        assert report.lut_pct == pytest.approx(lut, abs=7)

    def test_feasibility_matches_paper(self):
        # Exactly the three LUT-over-100% configs are infeasible.
        infeasible = {cfg for cfg in PAPER_TABLE7
                      if not estimate_for(*cfg).fits}
        assert infeasible == {(9, 64, 8), (9, 16, 16), (9, 16, 8)}

    def test_absolute_counts_positive(self):
        report = estimate_for(2, 64, 16)
        assert report.lut_count > 0
        assert report.ff_count > 0
        assert report.bram_count > 0


class TestBestFeasible:
    def test_nine_inputs_lands_on_paper_choice(self):
        config = best_feasible_config(9)
        assert (config.w_in, config.value_width) == (8, 8)

    def test_two_inputs_gets_full_width(self):
        config = best_feasible_config(2)
        assert config.w_in == 64

    def test_result_actually_fits(self):
        for n in (2, 4, 9, 16):
            config = best_feasible_config(n)
            assert estimate_resources(config).fits


class TestEngineGuard:
    def test_oversubscribed_engine_rejected(self):
        config = FpgaConfig(num_inputs=9, value_width=8, w_in=64)
        with pytest.raises(FpgaResourceError):
            CompactionEngine(config)

    def test_check_can_be_disabled(self):
        config = FpgaConfig(num_inputs=9, value_width=8, w_in=64)
        CompactionEngine(config, check_resources=False)
