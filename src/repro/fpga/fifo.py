"""Bounded FIFO — the synchronization primitive of the engine.

The paper stores decoded key and value streams in FIFOs rather than BRAM
because "FIFO is easier to be synchronized" and an element "can be used
only once" (§V-C) — hence the separate *copy* of the key stream feeding
the Key-Value Transfer module.  This class models both the functional
queue and its occupancy bookkeeping; timing interaction (backpressure) is
handled by the pipeline simulator, which consults ``is_full``.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterable, Optional, TypeVar

T = TypeVar("T")


class Fifo(Generic[T]):
    """Fixed-capacity single-reader queue with high-water statistics."""

    def __init__(self, capacity: int, name: str = "fifo"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: deque[T] = deque()
        self.total_pushed = 0
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: T) -> None:
        if self.is_full:
            raise OverflowError(f"push to full FIFO {self.name!r}")
        self._items.append(item)
        self.total_pushed += 1
        self.high_water = max(self.high_water, len(self._items))

    def peek(self) -> T:
        if not self._items:
            raise IndexError(f"peek on empty FIFO {self.name!r}")
        return self._items[0]

    def pop(self) -> T:
        if not self._items:
            raise IndexError(f"pop on empty FIFO {self.name!r}")
        return self._items.popleft()

    def try_peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.push(item)

    def clear(self) -> None:
        self._items.clear()
