"""Fig 11 — acceleration ratio of LevelDB-FCAE throughput (from Table VI)."""

from __future__ import annotations

from repro.bench import table6
from repro.bench.common import VALUE_LENGTHS, VALUE_WIDTHS, ExperimentResult

PAPER_MAX = 6.4  # the paper's headline write-throughput speedup


def run(scale: float = 1.0) -> ExperimentResult:
    grid = table6.run(scale)
    result = ExperimentResult(
        name="Fig 11",
        title="LevelDB-FCAE throughput acceleration over LevelDB",
        columns=["L_value", "V=8", "V=16", "V=32", "V=64", "paper_V=64"],
    )
    for row_index, value_length in enumerate(VALUE_LENGTHS):
        base = grid.cell(row_index, "LevelDB")
        ratios = [grid.cell(row_index, f"V={v}") / base for v in VALUE_WIDTHS]
        paper = table6.PAPER[value_length]
        result.add_row(value_length, *ratios, paper[4] / paper[0])
    best = max(max(row[1:5]) for row in result.rows)
    result.notes.append(
        f"max measured speedup {best:.1f}x (paper: up to {PAPER_MAX}x); "
        "the ratio grows with value length in both")
    return result
