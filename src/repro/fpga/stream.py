"""Stream width adapters (paper §V-D2).

The AXI port moves ``W_in`` (or ``W_out``) bytes per cycle while the
value data path inside the engine is ``V`` bytes wide.  The **Stream
Downsizer** narrows the inbound block stream from ``W_in`` to ``V``; the
**Stream Upsizer** widens the output buffer's drain to ``W_out``.  These
are pure rate adapters: functionally they pass bytes through unchanged,
and for timing they expose the cycles needed to move a payload at their
output rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class StreamDownsizer:
    """W_in-byte/cycle AXI beats → V-byte/cycle element stream."""

    input_width: int
    output_width: int

    def __post_init__(self) -> None:
        if self.output_width > self.input_width:
            raise ValueError("downsizer output must be narrower than input")

    def cycles_to_emit(self, nbytes: int) -> int:
        """Cycles to present ``nbytes`` on the narrow side."""
        return math.ceil(nbytes / self.output_width) if nbytes else 0

    def cycles_to_ingest(self, nbytes: int) -> int:
        """Cycles the wide side needs to deliver ``nbytes``."""
        return math.ceil(nbytes / self.input_width) if nbytes else 0


@dataclass(frozen=True)
class StreamUpsizer:
    """Narrow output-buffer drain → W_out-byte/cycle AXI write beats."""

    input_width: int
    output_width: int

    def __post_init__(self) -> None:
        if self.input_width > self.output_width:
            raise ValueError("upsizer input must be narrower than output")

    def cycles_to_write(self, nbytes: int) -> int:
        """Cycles of AXI write traffic for ``nbytes``."""
        return math.ceil(nbytes / self.output_width) if nbytes else 0
