"""Fig 10 + Table VI + Fig 11: end-to-end write throughput."""

from repro.bench import fig10, fig11, table6


def test_bench_fig10(benchmark, attach_rows):
    result = benchmark.pedantic(fig10.run, kwargs={"scale": 0.1},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    assert all(row[2] > row[1] for row in result.rows)


def test_bench_table6(benchmark, attach_rows):
    result = benchmark.pedantic(table6.run, kwargs={"scale": 0.05},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    assert len(result.rows) == 6


def test_bench_fig11(benchmark, attach_rows):
    result = benchmark.pedantic(fig11.run, kwargs={"scale": 0.05},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    assert all(row[4] > 1.0 for row in result.rows)  # V=64 speedup
