"""Item-granularity pipeline timing simulator.

The engine's modules run concurrently in hardware; this simulator
composes their per-pair service times (from :mod:`repro.fpga.cost_model`
and the module classes) into a kernel cycle count, honoring the
synchronization the paper describes:

* each input's Decoder runs ahead of the Comparer only as far as its
  key/value FIFO depth allows (a FIFO element is usable once, §V-C);
* a Comparer round needs the head key of *every* non-exhausted input;
* the value path is single-buffered: the winner's value moves through
  the Key-Value Transfer at ``V`` bytes/cycle and drains into the output
  buffer at ``output_buffer_width`` bytes/cycle before the next value may
  follow;
* the Data Block Encoder's key work runs parallel to the value drain;
* block flushes occupy the AXI writer at ``W_out`` bytes/cycle.

With the default ``output_buffer_width = 8`` this model reproduces the
paper's measured Table V within roughly -25%..+5% (EXPERIMENTS.md keeps
the per-cell comparison).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.cost_model import comparer_period


@dataclass
class TimingReport:
    """Cycle totals for one kernel run."""

    total_cycles: float = 0.0
    comparer_rounds: int = 0
    pairs_transferred: int = 0
    pairs_dropped: int = 0
    decoder_stall_cycles: float = 0.0   # comparer waiting on decoders
    value_bus_busy_cycles: float = 0.0
    writer_busy_cycles: float = 0.0
    input_bytes: int = 0
    output_bytes: int = 0
    #: decoder blocked because its KV FIFO had no free slot (§V-C
    #: backpressure; a FIFO element is usable once)
    decoder_backpressure_cycles: float = 0.0
    decoder_busy_cycles: float = 0.0
    comparer_busy_cycles: float = 0.0
    encoder_busy_cycles: float = 0.0
    #: per-input high-water KV-FIFO occupancy, in elements
    fifo_high_water: list[int] = field(default_factory=list)
    #: critical-path attribution of the run (a
    #: :class:`repro.obs.profile.Attribution`), populated by
    #: :meth:`PipelineTimer.finalize` when observability is enabled
    attribution: object = None

    def kernel_seconds(self, config: FpgaConfig) -> float:
        return config.cycles_to_seconds(self.total_cycles)

    #: ``utilization()`` keys, in reporting order.
    UTILIZATION_FIELDS = ("decoder", "comparer", "value_bus", "encoder",
                          "writer", "decoder_stall")

    def utilization(self) -> dict[str, float]:
        """Busy fraction of each module over the kernel run — a coarse
        occupancy profile of the pipeline.

        ``decoder`` sums the per-input Decoder chains, so with ``N``
        inputs it ranges up to ``N``; every other module is a single
        resource bounded by 1.  ``decoder_stall`` is the fraction the
        Comparer spent starved for a head key.
        """
        if self.total_cycles <= 0:
            return {name: 0.0 for name in self.UTILIZATION_FIELDS}
        return {
            "decoder": self.decoder_busy_cycles / self.total_cycles,
            "comparer": self.comparer_busy_cycles / self.total_cycles,
            "value_bus": self.value_bus_busy_cycles / self.total_cycles,
            "encoder": self.encoder_busy_cycles / self.total_cycles,
            "writer": self.writer_busy_cycles / self.total_cycles,
            "decoder_stall": self.decoder_stall_cycles / self.total_cycles,
        }

    def speed_mbps(self, config: FpgaConfig) -> float:
        """The paper's metric: input SSTable bytes / kernel time."""
        seconds = self.kernel_seconds(config)
        if seconds <= 0:
            return 0.0
        return self.input_bytes / seconds / 1e6


class _InputTimingState:
    """Decoder-side clock and FIFO occupancy for one input."""

    __slots__ = ("decoder_clock", "pending", "free_slots", "high_water")

    def __init__(self, fifo_depth: int) -> None:
        self.decoder_clock = 0.0
        #: ready times of decoded pairs sitting in the KV FIFO
        self.pending: deque[float] = deque()
        #: times at which FIFO slots became free; a decode consumes the
        #: earliest-freed slot, so a pair can never finish decoding into a
        #: slot before that slot was vacated.
        self.free_slots: deque[float] = deque([0.0] * fifo_depth)
        #: most elements ever resident in the KV FIFO
        self.high_water = 0


class PipelineTimer:
    """Drives the timing model; the engine (or a synthetic workload
    generator) feeds it decode and selection events in merge order.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) defaults to the
    process-wide registry when one is installed; :meth:`finalize` then
    publishes the run into the ``fpga_pipeline_*`` families.

    ``timeline`` (a :class:`repro.obs.TimelineRecorder`, defaulting to
    the process-wide one) turns on **event-level recording**: every
    decode, Comparer round, value-path move, encoder key pass and block
    flush becomes an interval on a per-module track, and KV-FIFO
    occupancy becomes per-input counter series.  Simulated cycles map to
    trace microseconds at the configured clock (``us = cycles /
    clock_mhz``); the run starts at the recorder's cursor
    (``timeline_origin_us`` overrides) and :meth:`finalize` advances the
    cursor past it, so consecutive runs and host phases share one
    contiguous timeline.  When neither a timeline nor a registry is
    attached the per-event cost is a single attribute check.
    """

    def __init__(self, config: FpgaConfig, metrics=None, timeline=None,
                 timeline_origin_us: float | None = None):
        from repro import obs

        self.config = config
        self.metrics = (metrics if metrics is not None
                        else obs.current_registry())
        self.timeline = (timeline if timeline is not None
                         else obs.current_timeline())
        self._inputs = [_InputTimingState(config.kv_fifo_depth)
                        for _ in range(config.num_inputs)]
        self._t_comparer = 0.0
        self._t_value_bus = 0.0
        self._t_encoder = 0.0
        self._t_writer = 0.0
        self.report = TimingReport()
        #: (module, start_cycles, end_cycles) intervals for the
        #: critical-path pass; collected whenever any sink is attached.
        self._profile_intervals: list[tuple[str, float, float]] | None = (
            [] if (self.metrics is not None or self.timeline is not None)
            else None)
        if self.timeline is not None:
            self._origin_us = (timeline_origin_us
                               if timeline_origin_us is not None
                               else self.timeline.cursor_us)
            self._us_per_cycle = 1.0 / config.clock_mhz

    # ------------------------------------------------------------------
    # Event recording (no-ops unless a sink is attached)
    # ------------------------------------------------------------------

    def _mark(self, module: str, track: str, name: str, start: float,
              end: float, args: dict | None = None) -> None:
        self._profile_intervals.append((module, start, end))
        if self.timeline is not None:
            self.timeline.interval(
                "fpga", track, name,
                self._origin_us + start * self._us_per_cycle,
                self._origin_us + end * self._us_per_cycle, args)

    def _mark_fifo(self, input_no: int, at: float, occupancy: int) -> None:
        if self.timeline is not None:
            self.timeline.counter(
                "fpga", f"fifo[{input_no}]",
                self._origin_us + at * self._us_per_cycle, occupancy)

    # ------------------------------------------------------------------
    # Decoder side
    # ------------------------------------------------------------------

    def _decode_service(self, key_len: int, value_len: int, new_block: bool,
                        block_compressed_size: int) -> float:
        config = self.config
        if config.variant is PipelineVariant.FULL:
            cycles = key_len + value_len / config.value_width
        else:
            cycles = float(key_len + value_len)
        if new_block:
            cycles += config.dram_read_latency
            if config.variant is PipelineVariant.BASIC:
                # Single read pointer: detour through the index block.
                cycles += 2 * config.dram_read_latency + 24
            stream_width = (config.w_in
                            if config.variant is PipelineVariant.FULL else 1)
            cycles += min(block_compressed_size, 64) / stream_width
        return cycles

    def decode_pair(self, input_no: int, key_len: int, value_len: int,
                    new_block: bool = False,
                    block_compressed_size: int = 4096) -> None:
        """The functional decoder produced one pair for ``input_no``.

        Callers decode at most ``kv_fifo_depth`` pairs ahead of the pops
        (the engine advances one pair per consumed head), so a free slot
        is always available here.
        """
        state = self._inputs[input_no]
        if not state.free_slots:
            raise SimulationError(
                f"decoder for input {input_no} ran more than "
                f"{self.config.kv_fifo_depth} pairs ahead of the Comparer")
        slot_available = state.free_slots.popleft()
        start = max(state.decoder_clock, slot_available)
        # Time the decoder spent blocked on a full FIFO (backpressure).
        self.report.decoder_backpressure_cycles += max(
            0.0, slot_available - state.decoder_clock)
        service = self._decode_service(key_len, value_len, new_block,
                                       block_compressed_size)
        self.report.decoder_busy_cycles += service
        end = start + service
        state.decoder_clock = end
        state.pending.append(end)
        state.high_water = max(state.high_water, len(state.pending))
        if self._profile_intervals is not None:
            self._mark("decoder", f"decoder[{input_no}]", "decode",
                       start, end,
                       {"key_len": key_len, "value_len": value_len,
                        "new_block": new_block})
            self._mark_fifo(input_no, end, len(state.pending))

    # ------------------------------------------------------------------
    # Comparer / transfer / encoder side
    # ------------------------------------------------------------------

    def head_ready_time(self, input_no: int) -> float:
        state = self._inputs[input_no]
        if not state.pending:
            raise SimulationError(
                f"input {input_no} has no decoded head pair")
        return state.pending[0]

    def comparer_round(self, live_inputs: list[int], winner: int,
                       drop: bool, key_len: int, value_len: int) -> float:
        """Run one selection round; returns the time the winner's pair
        left the pipeline (its FIFO slot free time)."""
        heads_ready = max(self.head_ready_time(i) for i in live_inputs)
        round_start = max(self._t_comparer, heads_ready)
        self.report.decoder_stall_cycles += max(
            0.0, heads_ready - self._t_comparer)
        if self.config.variant in (PipelineVariant.BASIC,
                                   PipelineVariant.SPLIT_BLOCKS):
            # Before key-value separation the Comparer reads the fused
            # entry — the value rides through the compare path (§V-C's
            # motivation); the tree and existence check still work on
            # keys alone.
            fanin = self.config.comparer_fanin_depth()
            round_cycles = (key_len + value_len) + (1 + fanin) * key_len
        else:
            round_cycles = comparer_period(key_len, self.config.num_inputs)
        round_end = round_start + round_cycles
        self._t_comparer = round_end
        self.report.comparer_rounds += 1
        self.report.comparer_busy_cycles += round_cycles
        if self._profile_intervals is not None:
            self._mark("comparer", "comparer", "round", round_start,
                       round_end, {"winner": winner, "drop": drop})

        if drop:
            self.report.pairs_dropped += 1
            slot_free = round_end
        else:
            slot_free = self._run_value_path(round_end, key_len, value_len)
            self.report.pairs_transferred += 1
        self._pop_and_refill(winner, slot_free)
        return slot_free

    def _run_value_path(self, ready: float, key_len: int,
                        value_len: int) -> float:
        config = self.config
        start = max(ready, self._t_value_bus)
        if config.variant is PipelineVariant.FULL:
            transfer = max(key_len, value_len / config.value_width)
            staging = value_len / config.output_buffer_width
        elif config.variant is PipelineVariant.KV_SEPARATION:
            transfer = float(max(key_len, value_len))
            staging = value_len / config.output_buffer_width
        else:
            # Fused key-value stream: one serial move, no separate staging.
            transfer = float(key_len + value_len)
            staging = 0.0
        end = start + transfer + staging
        self.report.value_bus_busy_cycles += transfer + staging
        self._t_value_bus = end
        # Encoder key work overlaps the value drain on its own resource.
        encoder_start = max(self._t_encoder, start)
        self._t_encoder = encoder_start + key_len
        self.report.encoder_busy_cycles += key_len
        if self._profile_intervals is not None:
            self._mark("value_bus", "value_bus", "move", start, end,
                       {"value_len": value_len})
            self._mark("encoder", "encoder", "encode_key", encoder_start,
                       self._t_encoder)
        return end

    def block_flush(self, block_bytes: int) -> None:
        """A data block (plus its index entry) streams out over AXI."""
        width = (self.config.w_out
                 if self.config.variant is PipelineVariant.FULL else 8)
        busy = block_bytes / width
        flush_start = max(self._t_writer,
                          max(self._t_value_bus, self._t_encoder))
        self._t_writer = flush_start + busy
        self.report.writer_busy_cycles += busy
        self.report.output_bytes += block_bytes
        if self._profile_intervals is not None:
            self._mark("writer", "writer", "block_flush", flush_start,
                       self._t_writer, {"block_bytes": block_bytes})

    def _pop_and_refill(self, input_no: int, slot_free: float) -> None:
        state = self._inputs[input_no]
        if not state.pending:
            raise SimulationError(f"pop on empty FIFO for input {input_no}")
        state.pending.popleft()
        state.free_slots.append(slot_free)
        if self._profile_intervals is not None:
            self._mark_fifo(input_no, slot_free, len(state.pending))

    # ------------------------------------------------------------------
    # Closed-form fast path over uniform runs
    # ------------------------------------------------------------------

    #: Simulate at least this many rounds before trying to extrapolate —
    #: below it the settle bookkeeping costs more than it saves.
    _UNIFORM_MIN_ROUNDS = 8

    def uniform_rounds(self, live_inputs: list[int], winner: int,
                       rounds: int, key_len: int, value_len: int,
                       drop: bool = False) -> float:
        """Advance the model by ``rounds`` repetitions of
        ``comparer_round(live_inputs, winner, drop, key_len, value_len)``
        each followed by ``decode_pair(winner, key_len, value_len)`` —
        i.e. a run of identical KV pairs where the winner's decoder
        refills its FIFO after every selection.

        The model is a max-plus recurrence, so once the per-round state
        delta settles to a uniform shift (two consecutive rounds moving
        every evolving clock — comparer, value bus, encoder, the
        winner's decoder clock and its FIFO entries — by the same
        amount, with the other inputs' constant head times no longer
        binding) the remaining rounds are extrapolated in closed form,
        by shift-invariance producing exactly the cycle counts the
        per-pair event loop would.  Transients (FIFO filling, a FIFO
        near full changing which ``max()`` binds) are simulated
        per-pair, as is the whole run when timeline/profile
        instrumentation is attached — event-level records stay exact.

        Returns the last round's slot-free time, like
        :meth:`comparer_round`.
        """
        slot_free = 0.0
        if (self._profile_intervals is not None
                or rounds < self._UNIFORM_MIN_ROUNDS):
            for _ in range(rounds):
                slot_free = self.comparer_round(live_inputs, winner, drop,
                                                key_len, value_len)
                self.decode_pair(winner, key_len, value_len)
            return slot_free

        state = self._inputs[winner]
        others_ready = max(
            (self.head_ready_time(i) for i in live_inputs if i != winner),
            default=None)
        prev_snap = None
        prev_delta = None
        done = 0
        while done < rounds:
            slot_free = self.comparer_round(live_inputs, winner, drop,
                                            key_len, value_len)
            self.decode_pair(winner, key_len, value_len)
            done += 1
            snap = self._uniform_snapshot(state, drop)
            if prev_snap is not None:
                delta = self._uniform_delta(prev_snap, snap)
                if (delta is not None and delta == prev_delta
                        and (others_ready is None
                             or others_ready <= max(self._t_comparer,
                                                    state.pending[0]))):
                    # Settled: every future round repeats this shift, and
                    # the other heads can never bind again (all clocks
                    # only grow).  Extrapolate the rest in closed form.
                    remaining = rounds - done
                    if remaining:
                        self._apply_uniform(state, drop, remaining, delta)
                        slot_free += remaining * delta[0]
                    return slot_free
                prev_delta = delta
            prev_snap = snap
        return slot_free

    def _uniform_snapshot(self, state: "_InputTimingState",
                          drop: bool) -> tuple:
        """Every evolving quantity of a uniform round, split into
        time-like clocks (must all shift by one scalar) and accumulating
        counters (must grow by a repeating increment)."""
        times = (self._t_comparer, state.decoder_clock,
                 *state.pending, *state.free_slots)
        if not drop:
            times += (self._t_value_bus, self._t_encoder)
        report = self.report
        counters = (report.decoder_stall_cycles,
                    report.decoder_backpressure_cycles,
                    report.comparer_busy_cycles,
                    report.decoder_busy_cycles,
                    report.value_bus_busy_cycles,
                    report.encoder_busy_cycles)
        return times, counters

    @staticmethod
    def _uniform_delta(prev: tuple, snap: tuple):
        """The (scalar shift, counter increments) between two snapshots,
        or ``None`` while the transient still moves clocks unevenly."""
        prev_times, prev_counters = prev
        times, counters = snap
        if len(prev_times) != len(times):
            return None
        shift = times[0] - prev_times[0]
        for before, after in zip(prev_times[1:], times[1:]):
            if after - before != shift:
                return None
        return shift, tuple(after - before for before, after
                            in zip(prev_counters, counters))

    def _apply_uniform(self, state: "_InputTimingState", drop: bool,
                       remaining: int, delta: tuple) -> None:
        shift_per_round, counter_incs = delta
        shift = remaining * shift_per_round
        self._t_comparer += shift
        if not drop:
            self._t_value_bus += shift
            self._t_encoder += shift
        state.decoder_clock += shift
        state.pending = deque(t + shift for t in state.pending)
        state.free_slots = deque(t + shift for t in state.free_slots)
        report = self.report
        (stall, backpressure, comparer_busy, decoder_busy,
         value_bus_busy, encoder_busy) = counter_incs
        report.decoder_stall_cycles += remaining * stall
        report.decoder_backpressure_cycles += remaining * backpressure
        report.comparer_busy_cycles += remaining * comparer_busy
        report.decoder_busy_cycles += remaining * decoder_busy
        report.value_bus_busy_cycles += remaining * value_bus_busy
        report.encoder_busy_cycles += remaining * encoder_busy
        report.comparer_rounds += remaining
        if drop:
            report.pairs_dropped += remaining
        else:
            report.pairs_transferred += remaining

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def finalize(self, input_bytes: int) -> TimingReport:
        """Drain the pipeline, close the report, and publish: metrics to
        the attached registry (``fpga_pipeline_*`` including the
        bottleneck attribution), the run's enclosing ``kernel_run``
        interval to the attached timeline."""
        self.report.input_bytes = input_bytes
        self.report.total_cycles = max(
            self._t_comparer, self._t_value_bus, self._t_encoder,
            self._t_writer)
        self.report.fifo_high_water = [state.high_water
                                       for state in self._inputs]
        if self._profile_intervals is not None:
            from repro.obs.profile import attribute_intervals
            self.report.attribution = attribute_intervals(
                self._profile_intervals, self.report.total_cycles)
        if self.metrics is not None:
            from repro.obs.names import publish_timing_report
            from repro.obs.profile import publish_attribution
            publish_timing_report(self.metrics, self.report, self.config)
            publish_attribution(self.metrics, self.report.attribution)
        if self.timeline is not None:
            end_us = (self._origin_us
                      + self.report.total_cycles * self._us_per_cycle)
            self.timeline.interval(
                "fpga", "kernel", "kernel_run", self._origin_us, end_us,
                {"cycles": self.report.total_cycles,
                 "clock_mhz": self.config.clock_mhz,
                 "bottleneck": self.report.attribution.bottleneck})
            self.timeline.advance_to(end_us)
        return self.report


#: One replayed selection round: the pair's sizes, whether the Comparer
#: dropped it, the bytes of a data block flushed right after it (0 for
#: none), and the refill decode issued after it — ``None`` when the
#: input is exhausted, else ``(key_len, value_len, new_block,
#: block_compressed_size)``.
RoundSpec = tuple[int, int, bool, int, "tuple[int, int, bool, int] | None"]


def replay_rounds(timer: PipelineTimer, input_no: int,
                  rounds: list[RoundSpec]) -> None:
    """Replay a single-input tail through the timer, batching runs of
    identical rounds through :meth:`PipelineTimer.uniform_rounds`.

    The event sequence is exactly the per-pair loop's — round, optional
    block flush, refill decode, repeated — so cycle counts are identical;
    runs are split wherever uniformity breaks (pair sizes or the drop
    flag change, a block flushes, a refill crosses an input-block
    boundary, or the input runs out).
    """
    live = [input_no]
    n = len(rounds)
    p = 0
    while p < n:
        key_len, value_len, drop, _, _ = rounds[p]
        # Rounds p..q-1 can refill inside one uniform run; round q needs
        # individual treatment (its flush, boundary refill, or the end).
        q = p
        while True:
            _, _, _, flush, refill = rounds[q]
            if (flush or refill is None or refill[2]
                    or refill[0] != key_len or refill[1] != value_len):
                break
            if q + 1 >= n or rounds[q + 1][:3] != (key_len, value_len, drop):
                break
            q += 1
        if q > p:
            timer.uniform_rounds(live, input_no, q - p, key_len, value_len,
                                 drop)
        timer.comparer_round(live, input_no, drop, key_len, value_len)
        _, _, _, flush, refill = rounds[q]
        if flush:
            timer.block_flush(flush)
        if refill is not None:
            timer.decode_pair(input_no, refill[0], refill[1], refill[2],
                              refill[3])
        p = q + 1
