"""Key-Value Transfer (paper §V-C).

The Decoder splits each decoded pair into three streams: the original key
stream (consumed by Key Compare — a FIFO element is usable once), a copy
of the key stream, and the value stream.  On a Keep decision the Transfer
module pops the winner's copy-key and value FIFOs and forwards the key to
the Data Block Encoder and the value straight to the output buffer; on a
Drop both are popped and discarded.

Timing: the key and value move in parallel, so a transfer costs
``max(L_key, L_value / V)`` cycles (Table III); before key-value
separation the value rides with the key byte-serially,
``max(L_key, L_value)`` (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.fifo import Fifo


@dataclass(frozen=True)
class TransferResult:
    """What left the Transfer module for one selection."""

    internal_key: bytes
    value: bytes
    dropped: bool


class KeyValueTransfer:
    """Selects/drops the winner's copy-key and value streams."""

    def __init__(self, config: FpgaConfig):
        self._config = config
        self.pairs_forwarded = 0
        self.pairs_dropped = 0
        self.value_bytes_forwarded = 0

    def execute(self, key_fifo: Fifo[bytes], value_fifo: Fifo[bytes],
                drop: bool) -> TransferResult:
        internal_key = key_fifo.pop()
        value = value_fifo.pop()
        if drop:
            self.pairs_dropped += 1
            return TransferResult(internal_key, value, dropped=True)
        self.pairs_forwarded += 1
        self.value_bytes_forwarded += len(value)
        return TransferResult(internal_key, value, dropped=False)

    def service_cycles(self, key_len: int, value_len: int) -> float:
        """Per-pair transfer time for the configured variant."""
        if self._config.variant is PipelineVariant.BASIC:
            # Key and value are one fused stream through the compare path.
            return float(key_len + value_len)
        if self._config.variant is PipelineVariant.SPLIT_BLOCKS:
            # Still fused key-value, but pipelined with the index walk.
            return float(max(key_len, value_len))
        if self._config.variant is PipelineVariant.KV_SEPARATION:
            # Separated but byte-serial value path (V widening is §V-D).
            return float(max(key_len, value_len))
        return float(max(key_len, value_len / self._config.value_width))
