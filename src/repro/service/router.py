"""Range-sharding router: key → shard index.

Shards own contiguous, non-overlapping key ranges split at ``N-1``
ordered boundary keys, exactly like a per-shard LSM tree's key space in
a range-partitioned store: shard ``i`` owns ``[split[i-1], split[i])``
(first shard unbounded below, last unbounded above).  Range ownership —
rather than hashing — keeps each shard's writes key-local, which is what
makes per-shard compaction (and its FPGA offload) see sorted-run overlap
comparable to a single-tenant store.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from repro.errors import InvalidArgumentError


class RangeRouter:
    """Maps keys to shard indices via ordered split keys."""

    def __init__(self, split_keys: Sequence[bytes] = ()):
        splits = [bytes(k) for k in split_keys]
        if any(splits[i] >= splits[i + 1] for i in range(len(splits) - 1)):
            raise InvalidArgumentError(
                "split keys must be strictly increasing")
        if any(not k for k in splits):
            raise InvalidArgumentError("split keys must be non-empty")
        self._splits = splits

    @classmethod
    def uniform(cls, num_shards: int, key_byte_width: int = 1
                ) -> "RangeRouter":
        """Evenly partition the keyspace by the first key byte(s).

        Good enough for uniformly distributed keys (benchmarks, hashed
        user keys); skewed keyspaces should pass explicit splits.
        """
        if num_shards < 1:
            raise InvalidArgumentError("num_shards must be >= 1")
        space = 256 ** key_byte_width
        splits = []
        for i in range(1, num_shards):
            boundary = i * space // num_shards
            splits.append(boundary.to_bytes(key_byte_width, "big"))
        return cls(splits)

    @property
    def num_shards(self) -> int:
        return len(self._splits) + 1

    def shard_for(self, key: bytes) -> int:
        """Index of the shard owning ``key``."""
        return bisect_right(self._splits, key)

    def shard_range(self, index: int) -> tuple[bytes | None, bytes | None]:
        """``(start, end)`` of shard ``index``; None = unbounded."""
        if not 0 <= index < self.num_shards:
            raise InvalidArgumentError(
                f"shard {index} out of range [0, {self.num_shards})")
        start = self._splits[index - 1] if index > 0 else None
        end = self._splits[index] if index < len(self._splits) else None
        return start, end

    def partition(self, keys: Iterable[bytes]) -> dict[int, list[bytes]]:
        """Group ``keys`` by owning shard (for fan-out planning)."""
        out: dict[int, list[bytes]] = {}
        for key in keys:
            out.setdefault(self.shard_for(key), []).append(key)
        return out

    def describe(self) -> list[dict]:
        """One ``{"shard", "start", "end"}`` dict per shard (hex keys)."""
        return [
            {
                "shard": i,
                "start": start.hex() if start is not None else None,
                "end": end.hex() if end is not None else None,
            }
            for i in range(self.num_shards)
            for start, end in [self.shard_range(i)]
        ]
