"""Virtual-time models for the end-to-end experiments.

Pure-Python byte shuffling cannot execute the paper's 20 GB-1 TB
workloads, so throughput experiments run on *models*: a virtual clock, a
CPU cost model calibrated to the paper's measured single-thread
compaction speeds (Table V's CPU column), a disk bandwidth model, and a
discrete-event simulator of the whole LevelDB / LevelDB-FCAE system
(flush + compaction scheduling, write stalls, PCIe transfers).

Nothing here measures wall-clock Python time; all durations are derived
from the calibrated models, which keeps every benchmark deterministic.
"""

from repro.sim.clock import VirtualClock
from repro.sim.cpu import CpuCostModel
from repro.sim.disk import DiskModel
from repro.sim.system import (
    OpenLoopResult,
    OpenLoopSimulator,
    OpenLoopTenantStats,
    SystemConfig,
    SystemResult,
    TenantSpec,
    simulate_fillrandom,
    simulate_open_loop,
)

__all__ = [
    "CpuCostModel",
    "DiskModel",
    "OpenLoopResult",
    "OpenLoopSimulator",
    "OpenLoopTenantStats",
    "SystemConfig",
    "SystemResult",
    "TenantSpec",
    "VirtualClock",
    "simulate_fillrandom",
    "simulate_open_loop",
]
