"""Workload generators: db_bench equivalents and YCSB core workloads."""

from repro.workloads.dbbench import DbBench, FillMode
from repro.workloads.distributions import (
    LatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.workloads.ycsb import (
    YCSB_WORKLOADS,
    YcsbOp,
    YcsbWorkload,
    YcsbWorkloadRunner,
)

__all__ = [
    "DbBench",
    "FillMode",
    "LatestGenerator",
    "UniformGenerator",
    "YCSB_WORKLOADS",
    "YcsbOp",
    "YcsbWorkload",
    "YcsbWorkloadRunner",
    "ZipfianGenerator",
]
