"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the single accumulation point for the paper's evaluation
metrics (Tables V-VIII, Figs 9-16): the LSM store, the compaction
scheduler, the PCIe model and the FPGA pipeline simulator all publish
here, and the stats dataclasses (`DbStats`, `SchedulerStats`) are thin
read-only views over it.  Exposition (Prometheus text format, the
human-readable ``repro.stats`` report) renders from :meth:`collect`.

Metric families follow the Prometheus data model: a family has a name,
a kind (counter/gauge/histogram) and help text; children are addressed
by a label set.  ``registry.counter(name, **labels)`` is get-or-create,
so instrumented code can cache the child object and increment it without
further lookups.
"""

from __future__ import annotations

import itertools
import re
import threading
from bisect import bisect_left
from typing import Iterable, Optional, Sequence

from repro.analysis import watchdog as lockwatch
from repro.errors import InvalidArgumentError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for durations in seconds (kernel runs,
#: compaction phases): 100 us .. 100 s, roughly log-spaced.
SECONDS_BUCKETS = (1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25,
                   1.0, 2.5, 10.0, 25.0, 100.0)

#: Default histogram buckets for byte volumes (SSTable/compaction sizes):
#: 4 KB .. 4 GB in powers of four.
BYTES_BUCKETS = tuple(4 ** n * 1024 for n in range(1, 11))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise InvalidArgumentError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise InvalidArgumentError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing accumulator (int or float)."""

    __slots__ = ("labels", "_lock", "_value")

    def __init__(self, labels: tuple[tuple[str, str], ...],
                 lock: threading.RLock):
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidArgumentError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value; supports set/inc/dec and high-water updates."""

    __slots__ = ("labels", "_lock", "_value")

    def __init__(self, labels: tuple[tuple[str, str], ...],
                 lock: threading.RLock):
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """High-water-mark update (FIFO occupancy, BRAM usage)."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        return self._value


class CallbackGauge:
    """Gauge whose value is computed on demand at collection time.

    Used for derived series that would be wasteful to refresh on the hot
    path — windowed percentiles, ratios — so the cost is paid at scrape
    time, not per operation.

    A callback may return ``None`` to signal "no sample right now"
    (e.g. an empty latency window): exposition then omits the series
    instead of publishing a phantom 0.0."""

    __slots__ = ("labels", "_callback")

    def __init__(self, labels: tuple[tuple[str, str], ...], callback):
        self.labels = labels
        self._callback = callback

    @property
    def value(self) -> Optional[float]:
        value = self._callback()
        return None if value is None else float(value)


class Exemplar:
    """One tail sample attached to a histogram bucket (OpenMetrics
    exemplars): the observed value plus the trace id active when it was
    recorded, so "p999 violated" resolves to a concrete journal trace.
    ``ts`` is optional — exposition omits the timestamp when absent,
    which also keeps golden-file tests deterministic."""

    __slots__ = ("value", "trace_id", "ts")

    def __init__(self, value: float, trace_id: str,
                 ts: Optional[float] = None):
        self.value = float(value)
        self.trace_id = str(trace_id)
        self.ts = ts

    def __repr__(self) -> str:
        return f"Exemplar({self.value!r}, trace_id={self.trace_id!r})"


class Histogram:
    """Fixed-bucket histogram with cumulative counts, Prometheus-style."""

    __slots__ = ("labels", "buckets", "_lock", "_counts", "_sum", "_count",
                 "_exemplars")

    def __init__(self, labels: tuple[tuple[str, str], ...],
                 lock: threading.RLock, buckets: Sequence[float]):
        self.labels = labels
        self.buckets = tuple(buckets)
        self._lock = lock
        self._counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        #: bucket index -> latest Exemplar (only buckets that ever saw a
        #: traced observation have an entry).
        self._exemplars: dict[int, Exemplar] = {}

    def observe(self, value: float, trace_id: Optional[str] = None,
                ts: Optional[float] = None) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if trace_id is not None:
                self._exemplars[index] = Exemplar(value, trace_id, ts)

    def exemplars(self) -> dict[int, Exemplar]:
        """``{bucket_index: latest Exemplar}`` (index ``len(buckets)`` is
        the +Inf bucket)."""
        with self._lock:
            return dict(self._exemplars)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(inf, count)``."""
        out, running = [], 0
        with self._lock:
            for bound, n in zip(self.buckets, self._counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), self._count))
        return out


class MetricFamily:
    """One named family: kind, help text and labeled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = tuple(buckets) if buckets is not None else None
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """Get-or-create registry of metric families.

    Thread-safe: family/child creation takes the registry lock, and every
    child shares that lock for its mutations (uncontended in the
    single-threaded simulators, correct when a real server wraps the
    store in threads).
    """

    def __init__(self) -> None:
        self._lock = lockwatch.make_rlock("obs.registry")
        self._families: dict[str, MetricFamily] = {}  # guarded_by: _lock, reads
        self._instances = itertools.count()

    # ------------------------------------------------------------------
    # Family / child creation
    # ------------------------------------------------------------------

    def _family_locked(self, name: str, kind: str, help_text: str,
                       buckets: Optional[Sequence[float]] = None
                       ) -> MetricFamily:
        _check_name(name)
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise InvalidArgumentError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {kind}")
        else:
            if help_text and not family.help:
                family.help = help_text
        return family

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        with self._lock:
            family = self._family_locked(name, "counter", help)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = Counter(key, self._lock)
                family.children[key] = child
            return child  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        with self._lock:
            family = self._family_locked(name, "gauge", help)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = Gauge(key, self._lock)
                family.children[key] = child
            return child  # type: ignore[return-value]

    def callback_gauge(self, name: str, help: str = "", callback=None,
                       **labels) -> CallbackGauge:
        """Register a lazily-evaluated gauge child.  Re-registering the
        same (name, labels) rebinds the callback (windows republish when
        re-wired)."""
        if callback is None:
            raise InvalidArgumentError("callback_gauge requires a callback")
        with self._lock:
            family = self._family_locked(name, "gauge", help)
            key = _label_key(labels)
            child = family.children.get(key)
            if isinstance(child, CallbackGauge):
                child._callback = callback
            else:
                child = CallbackGauge(key, callback)
                family.children[key] = child
            return child

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        with self._lock:
            family = self._family_locked(name, "histogram", help,
                                  buckets or SECONDS_BUCKETS)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = Histogram(key, self._lock, family.buckets)
            family.children[key] = child
            return child  # type: ignore[return-value]

    def describe(self, name: str, kind: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        """Pre-register a family (HELP/TYPE exposition with no samples
        yet) so dumps always advertise the full metric surface."""
        if kind not in ("counter", "gauge", "histogram"):
            raise InvalidArgumentError(f"unknown metric kind {kind!r}")
        with self._lock:
            self._family_locked(name, kind, help, buckets)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def instance_label(self) -> str:
        """Sequential per-registry id, used to keep same-named components
        (two DBs called "db") from aliasing each other's children."""
        return str(next(self._instances))

    def collect(self) -> list[MetricFamily]:
        """Families sorted by name; children in insertion order."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get_value(self, name: str, **labels) -> float:
        """Value of one counter/gauge child (0.0 when absent)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            child = family.children.get(_label_key(labels))
            if child is None:
                return 0.0
            value = child.value  # type: ignore[union-attr]
            return 0.0 if value is None else value

    def sum_family(self, name: str) -> float:
        """Sum of all children of a counter/gauge family."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            values = [child.value  # type: ignore[union-attr]
                      for child in family.children.values()]
        return sum(v for v in values if v is not None)

    def snapshot(self) -> dict:
        """Plain-dict dump ``{family: {label_tuple: value}}`` for tests
        and merging; histograms dump ``(sum, count)``.  Callback gauges
        reporting "no sample" (``None``) are skipped, matching the
        exposition behavior."""
        out: dict = {}
        with self._lock:
            for family in self.collect():
                entries = {}
                for key, child in family.children.items():
                    if family.kind == "histogram":
                        entries[key] = (child.sum, child.count)  # type: ignore[union-attr]
                    else:
                        value = child.value  # type: ignore[union-attr]
                        if value is None:
                            continue
                        entries[key] = value
                out[family.name] = entries
        return out


def merge_counts(dicts: Iterable[dict]) -> dict:
    """Sum plain ``{field: number}`` dicts field-wise (the ``merge``
    support behind ``DbStats.merge`` / ``SchedulerStats.merge``)."""
    merged: dict = {}
    for d in dicts:
        for key, value in d.items():
            merged[key] = merged.get(key, 0) + value
    return merged
