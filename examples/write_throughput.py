#!/usr/bin/env python3
"""End-to-end write-throughput study (the paper's Figs 10/14 in miniature).

Runs db_bench fillrandom through the discrete-event system simulator for
LevelDB and LevelDB-FCAE across a sweep of dataset sizes, printing
throughput, speedup, write amplification, and where each system spends
its time.

Run:  python examples/write_throughput.py
"""

from repro.bench.common import N9_CONFIG
from repro.lsm.options import Options
from repro.sim.system import SystemConfig, simulate_fillrandom

GB = 1 << 30
SIZES_GB = (0.25, 0.5, 1, 2, 8)


def main() -> None:
    options = Options(value_length=512)
    print(f"db_bench fillrandom, {options.key_length} B keys + "
          f"{options.value_length} B values, multi-input FCAE "
          f"(N={N9_CONFIG.num_inputs})\n")
    header = (f"{'data':>6}  {'LevelDB':>9}  {'FCAE':>9}  {'speedup':>7}  "
              f"{'WA':>5}  {'PCIe%':>6}")
    print(header)
    print("-" * len(header))
    for gigabytes in SIZES_GB:
        nbytes = int(gigabytes * GB)
        base = simulate_fillrandom(SystemConfig(
            mode="leveldb", options=options, data_size_bytes=nbytes))
        fcae = simulate_fillrandom(SystemConfig(
            mode="fcae", options=options, fpga=N9_CONFIG,
            data_size_bytes=nbytes))
        print(f"{gigabytes:>5}G  {base.throughput_mbps:>7.2f}MB"
              f"  {fcae.throughput_mbps:>7.2f}MB"
              f"  {fcae.throughput_mbps / base.throughput_mbps:>6.2f}x"
              f"  {fcae.write_amplification:>5.1f}"
              f"  {fcae.pcie_fraction * 100:>5.1f}%")

    # Show the time budget of the largest pair of runs.
    nbytes = int(SIZES_GB[-1] * GB)
    base = simulate_fillrandom(SystemConfig(
        mode="leveldb", options=options, data_size_bytes=nbytes))
    fcae = simulate_fillrandom(SystemConfig(
        mode="fcae", options=options, fpga=N9_CONFIG,
        data_size_bytes=nbytes))
    print(f"\ntime budget at {SIZES_GB[-1]} GB:")
    print(f"  LevelDB     : {base.elapsed_seconds:8.1f}s wall | "
          f"software merge {base.sw_compaction_seconds:8.1f}s | "
          f"writer stalls {base.stall_seconds:8.1f}s")
    print(f"  LevelDB-FCAE: {fcae.elapsed_seconds:8.1f}s wall | "
          f"FPGA kernel    {fcae.kernel_seconds:8.1f}s | "
          f"writer stalls {fcae.stall_seconds:8.1f}s | "
          f"PCIe {fcae.pcie_seconds:6.1f}s")
    print("\nthe baseline's background core is merge-bound; the FCAE "
          "system's bottleneck moves to disk and flush work — the same "
          "story the paper tells in §VII-B2a and §VII-C2.")


if __name__ == "__main__":
    main()
