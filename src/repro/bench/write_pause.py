"""Extension bench: the write-pause distribution.

The paper's narrative — "under heavy write workloads, system jam may
occur" (§I), "the write pause phenomenon cannot be avoided" (§III),
"FPGA cannot eliminate but can alleviate this problem" (§VII-C2) — is
about *tail latency*, which its throughput plots only imply.  This
target reports the simulated per-write latency distribution for LevelDB
and LevelDB-FCAE: average, p99, p99.9, and the longest single pause a
writer experienced.
"""

from __future__ import annotations

from repro.bench.common import ExperimentResult, N9_CONFIG, scale_bytes
from repro.lsm.options import Options
from repro.sim.system import SystemConfig, simulate_fillrandom

DATA_SIZE = 1 << 30
VALUE_LENGTH = 512


def run(scale: float = 1.0) -> ExperimentResult:
    nbytes = scale_bytes(DATA_SIZE, scale)
    options = Options(value_length=VALUE_LENGTH)
    result = ExperimentResult(
        name="Write pause",
        title="Per-write latency: pauses strike ~1 write per memtable, so "
              "the tail lives past p99.9",
        columns=["system", "avg_ms", "p99.99_ms", "p99.999_ms",
                 "max_pause_ms", "stall_share_pct"],
    )
    for mode, label in (("leveldb", "LevelDB"), ("fcae", "LevelDB-FCAE")):
        run_result = simulate_fillrandom(SystemConfig(
            mode=mode, options=options, fpga=N9_CONFIG,
            data_size_bytes=nbytes))
        base = SystemConfig().cpu.write_seconds(options.key_length,
                                                VALUE_LENGTH)
        avg = (run_result.elapsed_seconds / max(1, run_result.total_writes))
        result.add_row(
            label,
            avg * 1e3,
            run_result.latency_percentile(99.99, base) * 1e3,
            run_result.latency_percentile(99.999, base) * 1e3,
            run_result.max_write_pause * 1e3,
            100 * run_result.stall_seconds
            / max(1e-9, run_result.elapsed_seconds),
        )
    result.notes.append(
        "offloading cannot remove pauses (the flush path remains) but "
        "shortens and thins them — the paper's 'alleviate, not eliminate'")
    return result
