"""The ``python -m repro.lsm`` command-line client."""

import pytest

from repro.lsm.cli import main


@pytest.fixture
def dbdir(tmp_path):
    return str(tmp_path / "clidb")


class TestCrudCommands:
    def test_put_get_roundtrip(self, dbdir, capsys):
        assert main(["put", dbdir, "key1", "value one"]) == 0
        assert main(["get", dbdir, "key1"]) == 0
        assert "value one" in capsys.readouterr().out

    def test_get_missing(self, dbdir, capsys):
        main(["put", dbdir, "a", "1"])
        assert main(["get", dbdir, "nope"]) == 1
        assert "not found" in capsys.readouterr().err

    def test_delete(self, dbdir, capsys):
        main(["put", dbdir, "victim", "v"])
        assert main(["delete", dbdir, "victim"]) == 0
        assert main(["get", dbdir, "victim"]) == 1

    def test_persistence_across_invocations(self, dbdir, capsys):
        main(["put", dbdir, "durable", "yes"])
        main(["put", dbdir, "other", "data"])
        capsys.readouterr()
        assert main(["get", dbdir, "durable"]) == 0
        assert "yes" in capsys.readouterr().out


class TestScanAndStats:
    def test_scan_with_limit(self, dbdir, capsys):
        for i in range(5):
            main(["put", dbdir, f"k{i}", f"v{i}"])
        capsys.readouterr()
        assert main(["scan", dbdir, "--limit", "3"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 3

    def test_scan_range(self, dbdir, capsys):
        for name in ("alpha", "beta", "gamma"):
            main(["put", dbdir, name, "x"])
        capsys.readouterr()
        main(["scan", dbdir, "--start", "b", "--end", "c"])
        out = capsys.readouterr().out
        assert "beta" in out
        assert "alpha" not in out

    def test_stats_reports_levels(self, dbdir, capsys):
        main(["fill", dbdir, "--entries", "500", "--value-size", "64"])
        capsys.readouterr()
        assert main(["stats", dbdir]) == 0
        out = capsys.readouterr().out
        assert "level 0" in out
        assert "sequence" in out


class TestFillAndCompact:
    def test_fill_then_compact_cpu(self, dbdir, capsys):
        assert main(["fill", dbdir, "--entries", "2000",
                     "--value-size", "64"]) == 0
        assert main(["compact", dbdir]) == 0
        out = capsys.readouterr().out
        assert "levels after compaction" in out

    def test_fill_with_fpga_offload(self, dbdir, capsys):
        assert main(["fill", dbdir, "--entries", "3000",
                     "--value-size", "512", "--fpga", "9"]) == 0
        out = capsys.readouterr().out
        assert "offload:" in out

    def test_sequential_fill(self, dbdir, capsys):
        assert main(["fill", dbdir, "--entries", "100",
                     "--value-size", "32", "--sequential"]) == 0


class TestObservabilityCommands:
    def test_fill_watch_reports_windowed_percentiles(self, dbdir, capsys):
        # A watch interval far below per-put cost makes every report
        # boundary due immediately — progress lines with no real waiting.
        assert main(["fill", dbdir, "--entries", "300",
                     "--value-size", "64", "--watch", "1e-9"]) == 0
        captured = capsys.readouterr()
        watch_lines = [line for line in captured.err.splitlines()
                       if "puts" in line]
        assert watch_lines, "watch mode must emit progress lines"
        assert "p50=" in watch_lines[-1]
        assert "p999=" in watch_lines[-1]
        assert "levels=" in watch_lines[-1]
        assert "wrote 300 entries" in captured.out

    def test_levelstats_renders_amplification_table(self, dbdir, capsys):
        main(["fill", dbdir, "--entries", "2000", "--value-size", "64"])
        capsys.readouterr()
        assert main(["levelstats", dbdir]) == 0
        out = capsys.readouterr().out
        assert "repro.levelstats" in out
        assert "W-Amp" in out
        assert "level 0" in out
        assert "write_amplification:" in out

    def test_top_once_headless_frame(self, dbdir, capsys):
        main(["fill", dbdir, "--entries", "2000", "--value-size", "64"])
        capsys.readouterr()
        # --once renders exactly one frame and returns: no TTY, no
        # sleeping, no ANSI clear sequences.
        assert main(["top", dbdir, "--once"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("lsm top")
        assert "levels:" in out
        assert "\x1b[" not in out

    def test_top_on_fresh_db_reports_no_samples(self, dbdir, capsys):
        main(["put", dbdir, "k", "v"])
        capsys.readouterr()
        assert main(["top", dbdir, "--once"]) == 0
        out = capsys.readouterr().out
        # A level table always renders (the db is open); the frame must
        # not crash on the otherwise-empty registry.
        assert "lsm top" in out
