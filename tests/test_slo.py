"""SLO engine: spec parsing (dicts, flat policies, TOML and the
mini-TOML fallback), windowed good/bad accounting, multi-window
burn-rate alert transitions on a fake clock, exemplar journal events."""

import io

import pytest

from repro.errors import InvalidArgumentError
from repro.obs.events import EventJournal
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_POLICIES,
    BurnPolicy,
    SloEngine,
    SloSpec,
    WindowedCounter,
    _mini_toml_slo,
    build_engine,
    load_slo_file,
    parse_slo_specs,
    parse_slo_toml,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSpecParsing:
    def test_defaults(self):
        spec = SloSpec("api", "latency", target=0.99,
                       threshold_seconds=0.01)
        assert spec.error_budget == pytest.approx(0.01)
        assert spec.policies == DEFAULT_POLICIES
        assert spec.matches("put", "gold")
        assert spec.matches("get", "batch")

    def test_op_and_tenant_filters(self):
        spec = SloSpec("writes", "latency", threshold_seconds=0.01,
                       op="put", tenant="gold")
        assert spec.matches("put", "gold")
        assert not spec.matches("get", "gold")
        assert not spec.matches("put", "batch")

    def test_latency_requires_threshold(self):
        with pytest.raises(InvalidArgumentError):
            SloSpec("bad", "latency", threshold_seconds=None)

    def test_target_bounds(self):
        for target in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(InvalidArgumentError):
                SloSpec("bad", "availability", target=target)

    def test_from_dict_flat_policy_keys(self):
        spec = SloSpec.from_dict({
            "name": "api", "objective": "latency", "target": 0.999,
            "threshold_seconds": 0.005, "fast_short": 2.0,
            "fast_factor": 8.0})
        fast = spec.policies[0]
        assert fast.name == "fast"
        assert fast.short_seconds == 2.0
        assert fast.factor == 8.0
        # untouched keys keep the Google-SRE default
        assert fast.long_seconds == DEFAULT_POLICIES[0].long_seconds
        assert spec.policies[1] == DEFAULT_POLICIES[1]

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(InvalidArgumentError, match="unknown"):
            SloSpec.from_dict({"name": "x", "objective": "availability",
                               "target": 0.9, "typo_key": 1})

    def test_inline_dict_policies(self):
        spec = SloSpec("x", "latency", threshold_seconds=0.1, policies=[
            {"name": "only", "short_seconds": 1.0, "long_seconds": 5.0,
             "factor": 2.0}])
        assert isinstance(spec.policies[0], BurnPolicy)
        assert spec.policies[0].long_seconds == 5.0

    def test_policy_window_order_enforced(self):
        with pytest.raises(InvalidArgumentError):
            BurnPolicy("bad", short_seconds=10.0, long_seconds=1.0,
                       factor=2.0)

    def test_parse_specs_rejects_duplicates(self):
        with pytest.raises(InvalidArgumentError, match="duplicate"):
            parse_slo_specs([
                {"name": "a", "objective": "availability", "target": 0.9},
                {"name": "a", "objective": "availability", "target": 0.5},
            ])


SLO_TOML = """
# the SLO file format: one [[slo]] table per objective
[[slo]]
name = "put-latency"
objective = "latency"
target = 0.999
threshold_seconds = 0.005
op = "put"
fast_short = 60.0

[[slo]]
name = "availability"
objective = "availability"
target = 0.99
tenant = "gold"
"""


class TestTomlParsing:
    def test_parse_slo_toml(self):
        specs = parse_slo_toml(SLO_TOML)
        assert [s.name for s in specs] == ["put-latency", "availability"]
        assert specs[0].threshold_seconds == 0.005
        assert specs[0].policies[0].short_seconds == 60.0
        assert specs[1].tenant == "gold"

    def test_mini_parser_matches_tomllib_subset(self):
        # The 3.10 fallback must agree with tomllib on the scalar subset.
        tables = _mini_toml_slo(SLO_TOML)
        specs = parse_slo_specs(tables)
        assert [s.name for s in specs] == ["put-latency", "availability"]
        assert specs[0].policies[0].short_seconds == 60.0

    def test_mini_parser_rejects_nested_tables(self):
        with pytest.raises(InvalidArgumentError, match=r"\[\[slo\]\]"):
            _mini_toml_slo("[server]\nport = 1\n")

    def test_mini_parser_rejects_key_outside_table(self):
        with pytest.raises(InvalidArgumentError, match="outside"):
            _mini_toml_slo("name = 'x'\n")

    def test_load_slo_file(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(SLO_TOML)
        specs = load_slo_file(str(path))
        assert len(specs) == 2


class TestWindowedCounter:
    def test_windowed_totals(self):
        clock = FakeClock()
        counter = WindowedCounter(horizon_seconds=60.0, slice_seconds=1.0,
                                  clock=clock)
        counter.add(good=5, bad=1)
        clock.now = 30.0
        counter.add(good=3)
        assert counter.totals(60.0) == (8, 1)
        # A 10 s window only sees the recent slice.
        assert counter.totals(10.0) == (3, 0)

    def test_slices_expire_past_horizon(self):
        clock = FakeClock()
        counter = WindowedCounter(horizon_seconds=10.0, slice_seconds=1.0,
                                  clock=clock)
        counter.add(bad=7)
        clock.now = 100.0
        counter.add(good=1)
        assert counter.totals(10.0) == (1, 0)

    def test_bad_fraction_none_when_empty(self):
        counter = WindowedCounter(10.0, 1.0, FakeClock())
        assert counter.bad_fraction(10.0) is None
        counter.add(good=1, bad=1)
        assert counter.bad_fraction(10.0) == pytest.approx(0.5)


def make_engine(clock, registry=None, journal=None):
    spec = SloSpec("api", "latency", target=0.99,
                   threshold_seconds=0.010, op="put", policies=[
                       {"name": "fast", "short_seconds": 10.0,
                        "long_seconds": 60.0, "factor": 5.0}])
    return SloEngine((spec,), registry=registry, events=journal,
                     clock=clock, eval_interval=1.0)


class TestSloEngine:
    def test_good_traffic_never_fires(self):
        clock = FakeClock()
        engine = make_engine(clock)
        for step in range(100):
            clock.now = step * 0.5
            engine.record("put", 0.001, tenant="gold")
        engine.evaluate()
        assert engine.firing() == []
        assert engine.alert_log == []

    def test_bad_storm_fires_then_resolves(self):
        clock = FakeClock()
        engine = make_engine(clock)
        # Burn: every op blows the 10 ms threshold -> bad fraction 1.0,
        # burn = 1.0 / 0.01 = 100 >> factor 5 on both windows.
        for step in range(40):
            clock.now = step * 0.5
            engine.record("put", 0.5, tenant="gold")
        assert engine.firing() == [("api", "gold", "fast")]
        # Recovery: 20 s of good traffic empties the short window while
        # the long window still remembers the storm.
        for step in range(60):
            clock.now = 20.0 + step * 0.5
            engine.record("put", 0.001, tenant="gold")
        assert engine.firing() == []
        states = [a["state"] for a in engine.alert_log]
        assert states == ["firing", "resolved"]
        firing = engine.alert_log[0]
        assert firing["slo"] == "api"
        assert firing["tenant"] == "gold"
        assert firing["policy"] == "fast"
        assert firing["burn_short"] >= 5.0
        assert firing["burn_long"] >= 5.0

    def test_tenants_burn_independently(self):
        clock = FakeClock()
        engine = make_engine(clock)
        for step in range(40):
            clock.now = step * 0.5
            engine.record("put", 0.5, tenant="noisy")
            engine.record("put", 0.001, tenant="quiet")
        assert engine.firing() == [("api", "noisy", "fast")]
        assert engine.tenants() == ["noisy", "quiet"]

    def test_alert_and_exemplar_events_in_journal(self):
        clock = FakeClock()
        sink = io.StringIO()
        journal = EventJournal(sink=sink, keep_events=True)
        engine = make_engine(clock, journal=journal)
        for step in range(40):
            clock.now = step * 0.5
            engine.record("put", 0.5, tenant="gold",
                          trace_id=f"trace-{step}")
        alerts = [e for e in journal.events if e["type"] == "slo_alert"]
        exemplars = [e for e in journal.events if e["type"] == "exemplar"]
        assert len(alerts) == 1
        assert alerts[0]["state"] == "firing"
        assert exemplars, "bad tail ops with traces must emit exemplars"
        # Rate limited: far fewer exemplars than bad ops.
        assert len(exemplars) < 40
        assert exemplars[0]["trace"] == "trace-0"
        assert exemplars[0]["threshold"] == pytest.approx(0.010)

    def test_gauges_published(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        engine = make_engine(clock, registry=registry)
        for step in range(40):
            clock.now = step * 0.5
            engine.record("put", 0.5, tenant="gold")
        engine.evaluate()
        snapshot = registry.snapshot()
        burns = snapshot["slo_burn_rate"]
        assert any(dict(key).get("window") == "short" for key in burns)
        budget = snapshot["slo_error_budget_remaining"]
        assert list(budget.values()) == [0.0]
        events = snapshot["slo_events_total"]
        assert sum(events.values()) == 40

    def test_threshold_for_picks_tightest_match(self):
        specs = (
            SloSpec("loose", "latency", threshold_seconds=1.0, op="*"),
            SloSpec("tight", "latency", threshold_seconds=0.01, op="put"),
            SloSpec("avail", "availability", target=0.9),
        )
        engine = SloEngine(specs, clock=FakeClock())
        assert engine.threshold_for("put") == pytest.approx(0.01)
        assert engine.threshold_for("get") == pytest.approx(1.0)

    def test_availability_objective_ignores_latency(self):
        spec = SloSpec("up", "availability", target=0.9, policies=[
            {"name": "only", "short_seconds": 10.0, "long_seconds": 10.0,
             "factor": 2.0}])
        clock = FakeClock()
        engine = SloEngine((spec,), clock=clock)
        for step in range(20):
            clock.now = step * 0.5
            # Slow but successful: availability objective stays green.
            engine.record("get", 99.0, ok=True)
        assert engine.firing() == []
        for step in range(20):
            clock.now = 10.0 + step * 0.5
            engine.record("get", 0.001, ok=False)
        assert engine.firing() == [("up", "default", "only")]

    def test_build_engine_empty_specs(self):
        assert build_engine(()) is None
        assert build_engine(None) is None
        assert build_engine(
            ({"name": "x", "objective": "availability",
              "target": 0.9},)) is not None
