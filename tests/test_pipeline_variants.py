"""Pipeline variants: timing differs, functional output never does."""

from dataclasses import replace

import pytest

from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.engine import CompactionEngine, simulate_synthetic
from repro.lsm.internal import InternalKeyComparator
from repro.util.comparator import BytewiseComparator

from tests.conftest import build_table_image, make_entries

ICMP = InternalKeyComparator(BytewiseComparator())
BASE = FpgaConfig(num_inputs=2, value_width=16, w_in=64, w_out=64)
LADDER = (PipelineVariant.BASIC, PipelineVariant.SPLIT_BLOCKS,
          PipelineVariant.KV_SEPARATION, PipelineVariant.FULL)


class TestFunctionalInvariance:
    def test_all_variants_produce_identical_bytes(self, plain_options):
        newer = make_entries(180, seed=1, seq_base=10_000, delete_every=9)
        older = make_entries(220, seed=2, seq_base=1, delete_every=7)
        images = [[build_table_image(newer, plain_options, ICMP)],
                  [build_table_image(older, plain_options, ICMP)]]
        outputs = []
        for variant in LADDER:
            engine = CompactionEngine(replace(BASE, variant=variant),
                                      plain_options)
            result = engine.run_on_images(images, drop_deletions=True)
            outputs.append([o.data for o in result.outputs])
        for other in outputs[1:]:
            assert other == outputs[0]


class TestTimingOrdering:
    @pytest.mark.parametrize("value_length", [64, 512, 2048])
    def test_each_optimization_never_hurts_at_any_length(self, value_length):
        speeds = []
        for variant in LADDER:
            config = replace(BASE, variant=variant)
            report = simulate_synthetic(config, [600, 600], 16, value_length)
            speeds.append(report.speed_mbps(config))
        # Monotone non-decreasing along the ladder (small tolerance for
        # block-boundary rounding).
        for slower, faster in zip(speeds, speeds[1:]):
            assert faster >= slower * 0.98

    def test_basic_index_detour_visible(self):
        # The single-read-pointer stall only exists in BASIC.
        basic = replace(BASE, variant=PipelineVariant.BASIC)
        split = replace(BASE, variant=PipelineVariant.SPLIT_BLOCKS)
        report_basic = simulate_synthetic(basic, [800, 800], 16, 64)
        report_split = simulate_synthetic(split, [800, 800], 16, 64)
        assert report_basic.total_cycles > report_split.total_cycles

    def test_kernel_time_drops_four_fold_basic_to_full(self):
        basic = replace(BASE, variant=PipelineVariant.BASIC)
        full = BASE
        slow = simulate_synthetic(basic, [500, 500], 16, 1024)
        fast = simulate_synthetic(full, [500, 500], 16, 1024)
        assert slow.total_cycles > 4 * fast.total_cycles
