"""CRC32C (Castagnoli) with LevelDB's masking.

LevelDB stores CRCs *masked* — rotated and offset — so that computing the
CRC of a string that already contains an embedded CRC does not degrade the
checksum.  The polynomial here is the Castagnoli polynomial 0x1EDC6F41
(reflected form 0x82F63B78), the same one used by LevelDB/RocksDB, iSCSI
and ext4.

Three update paths share the same byte-table semantics and are verified
against the same golden vectors:

* tiny inputs (< ``_BULK_MIN`` bytes) use the classic byte-at-a-time
  loop — lowest constant cost;
* with numpy available, larger inputs use a *contribution table*: CRC is
  GF(2)-linear, so ``raw(M) = XOR_i F[n-1-i][M[i]]`` where ``F[d][b]`` is
  the state contribution of byte ``b`` followed by ``d`` zero bytes.  One
  fancy-index gather plus an XOR reduction handles a whole 4 KB chunk,
  and the running state is carried across chunks through the same table
  (``shift_m(c)`` decomposes over the four state bytes into rows
  ``m-1..m-4`` of ``F``);
* otherwise a pure-Python slice-by-8 loop over 64-bit words with paired
  16-bit tables (four 64 Ki-entry tables, two message bytes per lookup).

:func:`crc32c_many` extends the same algebra *across* messages: the
batched-merge backend checksums every block of a compaction in one call,
so the per-call numpy dispatch cost is paid once per batch instead of
once per block (see that function's docstring for the layout).

All tables are built lazily on first bulk use, so importing this module
stays cheap for callers that only checksum short records.
"""

from __future__ import annotations

import struct

_POLY = 0x82F63B78
_MASK_DELTA = 0xA282EAD8
_U32 = 0xFFFFFFFF

#: Inputs shorter than this use the byte-at-a-time loop: below ~64 bytes
#: the bulk paths' fixed setup cost exceeds the per-byte savings.
_BULK_MIN = 64

#: Chunk length of the numpy contribution table (rows = zero-distance).
_CHUNK = 4096

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()

# Lazily built bulk-path state (see _ensure_numpy_tables / _ensure_slice8).
_F = None           # numpy (CHUNK, 256) contribution table
_IDX_DESC = None    # numpy arange(CHUNK-1, -1, -1) for row gathers
_SLICE8 = None      # four 64 Ki-entry paired-byte tables
_STEP8 = struct.Struct("<Q")

# Batched-path state (see crc32c_many): eight numpy paired-16-bit tables
# covering a 16-byte step, plus the zero-padding correction table
# Z[n] = crc32c(n zero bytes), grown incrementally as longer blocks show
# up.  _ZRAW carries the un-finalized state so growth resumes where the
# last build stopped.
_MANY_K = 16
_MANY_TABLES = None
_Z = [0]
_ZRAW = _U32


def _ensure_numpy_tables() -> None:
    global _F, _IDX_DESC
    if _F is not None:
        return
    t0 = _np.array(_TABLE, dtype=_np.uint32)
    table = _np.empty((_CHUNK, 256), dtype=_np.uint32)
    table[0] = t0
    eight = _np.uint32(8)
    for distance in range(1, _CHUNK):
        prev = table[distance - 1]
        table[distance] = t0[prev & 0xFF] ^ (prev >> eight)
    _IDX_DESC = _np.arange(_CHUNK - 1, -1, -1)
    _F = table


def _ensure_slice8() -> None:
    global _SLICE8
    if _SLICE8 is not None:
        return
    # tables[k][b] = contribution of byte b followed by k zero bytes.
    tables = [_TABLE]
    for _ in range(7):
        prev = tables[-1]
        tables.append([_TABLE[v & 0xFF] ^ (v >> 8) for v in prev])
    t0, t1, t2, t3, t4, t5, t6, t7 = tables
    # Pair adjacent byte tables into 16-bit-indexed tables so one lookup
    # covers two message bytes.
    _SLICE8 = (
        [t7[w & 0xFF] ^ t6[w >> 8] for w in range(65536)],
        [t5[w & 0xFF] ^ t4[w >> 8] for w in range(65536)],
        [t3[w & 0xFF] ^ t2[w >> 8] for w in range(65536)],
        [t1[w & 0xFF] ^ t0[w >> 8] for w in range(65536)],
    )


def _crc_bytes(data, crc: int) -> int:
    """Byte-at-a-time state update (``crc`` already init-XORed)."""
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc


def _crc_numpy(data, crc: int) -> int:
    _ensure_numpy_tables()
    arr = _np.frombuffer(data, dtype=_np.uint8)
    table, idx_desc = _F, _IDX_DESC
    n = len(arr)
    pos = 0
    while pos < n:
        length = min(_CHUNK, n - pos)
        chunk = arr[pos:pos + length]
        if length < 4:
            # Too short for the 4-row shift decomposition below.
            return _crc_bytes(chunk.tolist(), crc)
        # raw contribution of this chunk: one gather + one XOR reduce.
        raw = int(_np.bitwise_xor.reduce(
            table[idx_desc[_CHUNK - length:], chunk]))
        # Carry the running state across `length` bytes: shift_m over the
        # four state bytes maps to rows m-1..m-4 (length >= _BULK_MIN).
        crc = (int(table[length - 1, crc & 0xFF])
               ^ int(table[length - 2, (crc >> 8) & 0xFF])
               ^ int(table[length - 3, (crc >> 16) & 0xFF])
               ^ int(table[length - 4, crc >> 24])
               ^ raw)
        pos += length
    return crc


def _crc_slice8(data, crc: int) -> int:
    _ensure_slice8()
    v3, v2, v1, v0 = _SLICE8
    view = memoryview(data)
    n8 = len(view) - (len(view) % 8)
    for (word,) in _STEP8.iter_unpack(view[:n8]):
        x = word ^ crc
        crc = (v3[x & 0xFFFF] ^ v2[(x >> 16) & 0xFFFF]
               ^ v1[(x >> 32) & 0xFFFF] ^ v0[x >> 48])
    return _crc_bytes(view[n8:], crc)


def crc32c(data, value: int = 0) -> int:
    """Return the CRC32C of ``data``, extending a running ``value``.

    ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview`` — no
    copies are made on any path.
    """
    crc = value ^ _U32
    if len(data) < _BULK_MIN:
        crc = _crc_bytes(data, crc)
    elif _np is not None:
        crc = _crc_numpy(data, crc)
    else:
        crc = _crc_slice8(data, crc)
    return crc ^ _U32


def _ensure_many_tables() -> None:
    """Build the eight paired-16-bit tables for the 16-byte batched step.

    Table ``j`` folds message bytes ``2j`` and ``2j+1`` of a 16-byte
    chunk: ``tables[j][lo | hi << 8] = contribution of byte lo followed
    by (15-2j) zeros XOR byte hi followed by (14-2j) zeros``.  ~2 MB
    total, built once on first :func:`crc32c_many` call.
    """
    global _MANY_TABLES
    if _MANY_TABLES is not None:
        return
    # byte_tables[k][b] = contribution of byte b followed by k zeros.
    byte_tables = [_TABLE]
    for _ in range(_MANY_K - 1):
        prev = byte_tables[-1]
        byte_tables.append([_TABLE[v & 0xFF] ^ (v >> 8) for v in prev])
    words = _np.arange(65536)
    lo_idx = words & 0xFF
    hi_idx = words >> 8
    tables = []
    for j in range(_MANY_K // 2):
        lo = _np.array(byte_tables[_MANY_K - 1 - 2 * j], dtype=_np.uint32)
        hi = _np.array(byte_tables[_MANY_K - 2 - 2 * j], dtype=_np.uint32)
        tables.append(lo[lo_idx] ^ hi[hi_idx])
    _MANY_TABLES = tables


def _zeros_crc_table(maxlen: int):
    """``Z[n] = crc32c(n zero bytes)`` for n in 0..maxlen, grown lazily."""
    global _ZRAW
    table, state = _TABLE, _ZRAW
    while len(_Z) <= maxlen:
        state = table[state & 0xFF] ^ (state >> 8)
        _Z.append(state ^ _U32)
    _ZRAW = state
    return _np.asarray(_Z, dtype=_np.uint64)


def crc32c_many(blocks) -> list[int]:
    """CRC32C of every message in ``blocks``, batched.

    With numpy, all messages are right-aligned (left-zero-padded) into
    one C-order ``(B, W)`` uint8 matrix, viewed as little-endian 16-bit
    columns, and advanced 16 bytes per step with one 64 Ki-entry table
    lookup per two message bytes; the running state folds into the
    step's first two 16-bit lanes.  Leading pad zeros are free — a zero
    byte under zero state contributes nothing — and the final states are
    corrected per row with ``Z[len]``, the CRC of that many zero bytes.
    This amortizes numpy's per-call dispatch across the whole batch:
    ~2.5x faster than per-block :func:`crc32c` at SSTable block sizes.

    Blocks are bucketed by length class (``len.bit_length()``) before
    padding, so one outlier message — an SSTable's index block next to
    thousands of data blocks — cannot inflate the padded width of the
    whole batch: within a bucket lengths differ by at most 2x.

    Without numpy (or for small batches) it degrades to per-block
    :func:`crc32c` — same values, scalar speed.
    """
    if _np is None or len(blocks) < 2:
        return [crc32c(b) for b in blocks]
    buckets: dict[int, list[int]] = {}
    for index, block in enumerate(blocks):
        buckets.setdefault(len(block).bit_length(), []).append(index)
    if len(buckets) == 1:
        return _crc32c_many_bucket(blocks)
    out = [0] * len(blocks)
    for indices in buckets.values():
        if len(indices) == 1:
            out[indices[0]] = crc32c(blocks[indices[0]])
        else:
            for index, value in zip(indices, _crc32c_many_bucket(
                    [blocks[i] for i in indices])):
                out[index] = value
    return out


def _crc32c_many_bucket(blocks) -> list[int]:
    """The padded-matrix batch kernel for similarly-sized ``blocks``."""
    _ensure_many_tables()
    count = len(blocks)
    lens = _np.fromiter((len(b) for b in blocks), dtype=_np.int64,
                        count=count)
    maxlen = int(lens.max())
    if maxlen == 0:
        return [0] * count
    width = ((maxlen + _MANY_K - 1) // _MANY_K) * _MANY_K
    mat = _np.zeros((count, width), dtype=_np.uint8)
    for row, block in enumerate(blocks):
        if block:
            mat[row, width - len(block):] = _np.frombuffer(
                block, dtype=_np.uint8)
    lanes = mat.view("<u2")
    tables = _MANY_TABLES
    half = _MANY_K // 2
    state = _np.zeros(count, dtype=_np.uint32)
    mask16 = _np.uint32(0xFFFF)
    shift16 = _np.uint32(16)
    for step in range(width // _MANY_K):
        base = step * half
        acc = tables[0][lanes[:, base] ^ (state & mask16)]
        acc ^= tables[1][lanes[:, base + 1] ^ (state >> shift16)]
        for j in range(2, half):
            acc ^= tables[j][lanes[:, base + j]]
        state = acc
    zeros = _zeros_crc_table(maxlen)
    final = (state.astype(_np.uint64) ^ zeros[lens]).astype(_np.uint32)
    return [int(v) for v in final]


def mask_crc(crc: int) -> int:
    """Mask a raw CRC for storage (LevelDB's ``crc32c::Mask``)."""
    return (((crc >> 15) | (crc << 17)) + _MASK_DELTA) & _U32


def unmask_crc(masked: int) -> int:
    """Invert :func:`mask_crc`."""
    rot = (masked - _MASK_DELTA) & _U32
    return ((rot >> 17) | (rot << 15)) & _U32
