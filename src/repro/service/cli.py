"""``python -m repro.service`` — run or talk to the sharded KV server.

Server::

    python -m repro.service serve /tmp/kv --port 7707 --shards 4 \
        --wal-sync group

Client::

    python -m repro.service put    --port 7707 greeting "hello world"
    python -m repro.service get    --port 7707 greeting
    python -m repro.service delete --port 7707 greeting
    python -m repro.service stats  --port 7707
    python -m repro.service ping   --port 7707

The server opens every shard in the requested WAL sync mode (default
``group``: one fsync amortized across all concurrently acknowledged
writes — see ``Options.wal_sync``).  ``--ready-fd N`` writes one line
(``host port``) to file descriptor ``N`` once the listener is bound,
for harnesses that need to know the ephemeral port.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import NotFoundError, ReproError
from repro.lsm.options import Options, WAL_SYNC_MODES


def cmd_serve(args) -> int:
    from repro.service.server import KVServer, KVService

    options = Options(wal_sync=args.wal_sync, event_journal=True)
    service = KVService(args.root, num_shards=args.shards, options=options,
                        stall_threshold=args.stall_threshold)
    server = KVServer(service, host=args.host, port=args.port,
                      max_workers=args.workers)
    print(f"serving {args.shards} shard(s) under {args.root} on "
          f"{server.host}:{server.port} (wal_sync={args.wal_sync})",
          file=sys.stderr)
    if args.ready_fd >= 0:
        with os.fdopen(args.ready_fd, "w") as ready:
            ready.write(f"{server.host} {server.port}\n")
    server.serve_forever()
    return 0


def _client(args):
    from repro.service.client import KVClient

    return KVClient(args.host, args.port, timeout=args.timeout)


def cmd_ping(args) -> int:
    with _client(args) as kv:
        kv.ping()
    print("PONG")
    return 0


def cmd_get(args) -> int:
    with _client(args) as kv:
        try:
            value = kv.get(args.key.encode())
        except NotFoundError:
            print(f"(not found: {args.key})", file=sys.stderr)
            return 1
    sys.stdout.write(value.decode(errors="replace") + "\n")
    return 0


def cmd_put(args) -> int:
    with _client(args) as kv:
        kv.put(args.key.encode(), args.value.encode())
    print("OK")
    return 0


def cmd_delete(args) -> int:
    with _client(args) as kv:
        kv.delete(args.key.encode())
    print("OK")
    return 0


def cmd_stats(args) -> int:
    import json

    with _client(args) as kv:
        print(json.dumps(kv.stats(), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Sharded KV service over the FCAE LSM store.")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the server")
    serve.add_argument("root", help="directory holding the shard DBs")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7707,
                       help="0 picks an ephemeral port (default 7707)")
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--workers", type=int, default=16,
                       help="handler thread pool size")
    serve.add_argument("--wal-sync", default="group",
                       choices=WAL_SYNC_MODES)
    serve.add_argument("--stall-threshold", type=float, default=0.5,
                       help="stalled-time fraction that trips BUSY")
    serve.add_argument("--ready-fd", type=int, default=-1,
                       help="fd to announce 'host port' on once bound")
    serve.set_defaults(func=cmd_serve)

    def add_client(name, func, *positionals):
        cmd = sub.add_parser(name)
        for positional in positionals:
            cmd.add_argument(positional)
        cmd.add_argument("--host", default="127.0.0.1")
        cmd.add_argument("--port", type=int, default=7707)
        cmd.add_argument("--timeout", type=float, default=10.0)
        cmd.set_defaults(func=func)

    add_client("ping", cmd_ping)
    add_client("get", cmd_get, "key")
    add_client("put", cmd_put, "key", "value")
    add_client("delete", cmd_delete, "key")
    add_client("stats", cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ConnectionError as error:
        print(f"error: cannot reach server: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
