"""Near-storage placement (the §VII-E extension)."""

import pytest

from repro.fpga.config import CONFIG_2_INPUT
from repro.host.device import FcaeDevice
from repro.host.near_storage import NearStorageDevice, SsdModel
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.sstable import TableReader
from repro.util.comparator import BytewiseComparator

from tests.conftest import build_table_image, make_entries

ICMP = InternalKeyComparator(BytewiseComparator())


def readers_for(plain_options, seeds=(1, 2), count=250):
    return [[TableReader(build_table_image(
        make_entries(count, seed=s, seq_base=s * 10 ** 6), plain_options,
        ICMP), ICMP, plain_options)] for s in seeds]


class TestSsdModel:
    def test_stream_time_linear(self):
        ssd = SsdModel(internal_bandwidth=1e9)
        assert ssd.stream_seconds(1_000_000) == pytest.approx(1e-3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SsdModel().stream_seconds(-1)


class TestNearStorageDevice:
    def test_functionally_identical_to_pcie_device(self, plain_options):
        readers = readers_for(plain_options)
        near = NearStorageDevice(CONFIG_2_INPUT, plain_options)
        pcie = FcaeDevice(CONFIG_2_INPUT, plain_options)
        near_result = near.compact(readers)
        pcie_result = pcie.compact(readers)
        assert [o.data for o in near_result.outputs] == [
            o.data for o in pcie_result.outputs]
        assert near_result.meta_out == pcie_result.meta_out

    def test_same_kernel_time_as_pcie(self, plain_options):
        readers = readers_for(plain_options)
        near = NearStorageDevice(CONFIG_2_INPUT, plain_options)
        pcie = FcaeDevice(CONFIG_2_INPUT, plain_options)
        assert near.compact(readers).kernel_seconds == pytest.approx(
            pcie.compact(readers).kernel_seconds)

    def test_no_pcie_in_breakdown(self, plain_options):
        readers = readers_for(plain_options)
        result = NearStorageDevice(CONFIG_2_INPUT, plain_options).compact(
            readers)
        assert result.command_seconds < 1e-4
        assert result.internal_read_seconds > 0
        assert result.internal_write_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.command_seconds + result.internal_read_seconds
            + result.kernel_seconds + result.internal_write_seconds)

    def test_data_movement_fraction_bounded(self, plain_options):
        readers = readers_for(plain_options)
        result = NearStorageDevice(CONFIG_2_INPUT, plain_options).compact(
            readers)
        assert 0 < result.data_movement_fraction < 0.6


class TestBenchTarget:
    def test_near_storage_bench_runs(self):
        from repro.bench import near_storage as bench
        result = bench.run()
        assert len(result.rows) == 3
        for row in result.rows:
            assert row[5] < 1.0  # near-storage never slower
