"""DbStats observability counters."""

import pytest

from repro.errors import NotFoundError
from repro.lsm import LsmDB, Options
from repro.lsm.env import MemEnv


@pytest.fixture
def db(options):
    return LsmDB("statsdb", options, env=MemEnv())


class TestCounters:
    def test_writes_counted(self, db):
        for i in range(10):
            db.put(f"k{i}".encode(), b"value")
        assert db.stats.writes == 10
        assert db.stats.write_bytes == sum(
            len(f"k{i}") + 5 for i in range(10))

    def test_deletes_count_as_writes(self, db):
        db.delete(b"ghost")
        assert db.stats.writes == 1

    def test_reads_and_hits(self, db):
        db.put(b"k", b"v")
        db.get(b"k")
        with pytest.raises(NotFoundError):
            db.get(b"missing")
        assert db.stats.reads == 2
        assert db.stats.read_hits == 1

    def test_flush_counters(self, db):
        for i in range(100):
            db.put(f"k{i:06d}".encode(), b"x" * 50)
        db.flush()
        assert db.stats.flushes >= 1
        assert db.stats.flush_bytes > 0

    def test_compaction_counters(self, db):
        for i in range(3000):
            db.put(f"k{i:010d}".encode(), b"x" * 40)
        db.compact_range()
        assert db.stats.compactions >= 1
        assert db.stats.compaction_input_bytes > 0
        assert db.stats.compaction_output_bytes > 0

    def test_write_amplification(self, db):
        import random
        assert db.stats.write_amplification == 0.0
        rng = random.Random(5)
        for i in range(3000):
            # Incompressible values, so physical bytes track user bytes.
            db.put(f"k{i:010d}".encode(), rng.randbytes(40))
        db.compact_range()
        # Data was flushed once and rewritten at least once.
        assert db.stats.write_amplification > 1.0
