"""FPGA engine configuration.

The paper's tunables: ``N`` (number of inputs the Comparer can merge),
``V`` (value data-path width, bytes/cycle), ``W_in``/``W_out`` (AXI
read/write widths, max 64 bytes = 512 bits), and the 200 MHz clock.

``PipelineVariant`` selects how much of the paper's optimization ladder is
applied; the basic variant exists so the ablation benchmarks can show what
each optimization buys (paper §V-B/C/D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import InvalidArgumentError

#: AXI allows at most 512-bit (64-byte) beats (paper §V-D2).
MAX_AXI_WIDTH = 64


class PipelineVariant(enum.Enum):
    """Which optimizations of §V are active."""

    #: Fig 2 — single read pointer; index decode stalls the pipeline;
    #: values travel with keys through the compare path.
    BASIC = "basic"
    #: Fig 3 — index/data block decoders and encoders separated.
    SPLIT_BLOCKS = "split_blocks"
    #: Fig 4 — plus key-value separation (values skip the Comparer).
    KV_SEPARATION = "kv_separation"
    #: Fig 5 — plus V-wide value paths and W_in/W_out AXI streaming.
    FULL = "full"


@dataclass(frozen=True)
class FpgaConfig:
    """One engine instantiation.

    Attributes
    ----------
    num_inputs:
        ``N`` — parallel Decoder chains / Comparer fan-in.
    value_width:
        ``V`` — bytes of value moved per cycle on the value data path.
    w_in / w_out:
        AXI read/write widths in bytes per cycle (``<= 64``).
    clock_mhz:
        Engine clock; the KCU1500 design runs at 200 MHz.
    dram_read_latency:
        Cycles from DRAM read request to first data (paper: 7-8).
    onchip_read_latency:
        Cycles to read on-chip FIFO/BRAM (paper: 1).
    kv_fifo_depth:
        Key-value buffer capacity per input, in pairs.  The default of 1
        ("an element in FIFO can be used only once", §V-C) makes the
        decoder lockstep with consumption, which is the behaviour the
        Table V calibration assumes; deeper FIFOs let decoders run ahead.
    output_buffer_width:
        Bytes/cycle at which a selected value drains into the output
        buffer before the Stream Upsizer.  This single-buffered 8-byte
        port is the calibration constant fitted to the paper's Table V
        (see DESIGN.md); with it the model reproduces the measured
        compaction speeds within ~15% across the whole table.
    variant:
        Optimization level (see :class:`PipelineVariant`).
    """

    num_inputs: int = 2
    value_width: int = 16
    w_in: int = 64
    w_out: int = 64
    clock_mhz: float = 200.0
    dram_read_latency: int = 8
    onchip_read_latency: int = 1
    kv_fifo_depth: int = 1
    output_buffer_width: int = 8
    variant: PipelineVariant = PipelineVariant.FULL

    def __post_init__(self) -> None:
        if self.num_inputs < 2:
            raise InvalidArgumentError("num_inputs must be >= 2")
        if not 1 <= self.value_width <= MAX_AXI_WIDTH:
            raise InvalidArgumentError(
                f"value_width must be in [1, {MAX_AXI_WIDTH}]")
        if not 1 <= self.w_in <= MAX_AXI_WIDTH:
            raise InvalidArgumentError(f"w_in must be in [1, {MAX_AXI_WIDTH}]")
        if not 1 <= self.w_out <= MAX_AXI_WIDTH:
            raise InvalidArgumentError(f"w_out must be in [1, {MAX_AXI_WIDTH}]")
        if self.value_width > self.w_in:
            raise InvalidArgumentError(
                "value_width (V) cannot exceed the AXI read width (W_in)")
        if self.clock_mhz <= 0:
            raise InvalidArgumentError("clock_mhz must be positive")
        if self.kv_fifo_depth < 1:
            raise InvalidArgumentError("kv_fifo_depth must be >= 1")
        if self.output_buffer_width < 1:
            raise InvalidArgumentError("output_buffer_width must be >= 1")

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def comparer_fanin_depth(self) -> int:
        """``ceil(log2 N)`` — depth of the compare tree."""
        n = self.num_inputs
        depth = 0
        while (1 << depth) < n:
            depth += 1
        return depth


#: The paper's 2-input configuration (§VII-B): resources are plentiful, so
#: both AXI widths are maxed and V defaults to 16.
CONFIG_2_INPUT = FpgaConfig(num_inputs=2, value_width=16, w_in=64, w_out=64)

#: The paper's 9-input configuration (§VII-C1): the added Decoders and
#: Stream Downsizers exhaust LUTs, so W_in and V shrink to 8.
CONFIG_9_INPUT = FpgaConfig(num_inputs=9, value_width=8, w_in=8, w_out=64)
