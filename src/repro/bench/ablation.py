"""Ablation (extra, not in the paper's tables): the §V optimization
ladder.

Measures kernel compaction speed as each optimization is stacked:

1. BASIC           — Fig 2: single read pointer, fused key-value streams
2. SPLIT_BLOCKS    — Fig 3: index/data block decoder & encoder separation
3. KV_SEPARATION   — Fig 4: values bypass the Comparer
4. FULL            — Fig 5: V-wide value paths, W_in/W_out AXI streaming

This quantifies what each of the paper's design decisions buys, which the
paper motivates qualitatively but never isolates.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.common import ExperimentResult
from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.engine import simulate_synthetic

KEY_LENGTH = 16
VALUE_LENGTHS = (64, 512, 2048)
DEFAULT_PAIRS = 3000

LADDER = (
    PipelineVariant.BASIC,
    PipelineVariant.SPLIT_BLOCKS,
    PipelineVariant.KV_SEPARATION,
    PipelineVariant.FULL,
)


def run(scale: float = 1.0) -> ExperimentResult:
    pairs = max(150, int(DEFAULT_PAIRS * scale))
    result = ExperimentResult(
        name="Ablation",
        title="Kernel speed (MB/s) as §V optimizations stack "
              "(2-input, V=16)",
        columns=["variant"] + [f"L={v}" for v in VALUE_LENGTHS],
    )
    base_config = FpgaConfig(num_inputs=2, value_width=16, w_in=64,
                             w_out=64)
    for variant in LADDER:
        config = replace(base_config, variant=variant)
        speeds = []
        for value_length in VALUE_LENGTHS:
            report = simulate_synthetic(config, [pairs, pairs], KEY_LENGTH,
                                        value_length)
            speeds.append(report.speed_mbps(config))
        result.add_row(variant.value, *speeds)
    # Sanity context for readers: each rung should not be slower than the
    # previous at long values, where the optimizations bite hardest.
    result.notes.append(
        "each row adds one optimization of §V on top of the previous")
    return result
