#!/usr/bin/env python3
"""cProfile one hot-path microbenchmark and print the hottest functions.

The hot-path suite (``repro.bench.hotpath``) tells you *that* a row got
slower; this tool tells you *where*::

    PYTHONPATH=src python tools/profile_hotpath.py cpu_merge_4way
    PYTHONPATH=src python tools/profile_hotpath.py block_decode \\
        --sort tottime --limit 40 --scale 0.5
    PYTHONPATH=src python tools/profile_hotpath.py --list

It builds the same workload the benchmark row measures (same sizes,
same seeds, honoring ``--scale``), runs the row's inner function once
under ``cProfile``, and prints ``pstats`` output.  ``--out`` addition-
ally dumps the raw stats for ``snakeviz``/``pstats`` post-processing.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def build_rows(scale: float) -> dict:
    """Name -> zero-arg callable for every hot-path bench row.

    Reuses :func:`repro.bench.hotpath.run`'s own workload builders by
    monkey-patching the sampler: instead of timing each row, capture its
    callable.  This guarantees the profiled workload is exactly the
    benchmarked one.
    """
    from repro.bench import hotpath

    rows: dict[str, object] = {}
    original = hotpath._sample

    def capture(fn, repeat, warmup):
        rows[_pending.pop()] = fn
        return 1e-6, 1e-6  # placeholder timing; result is discarded

    _pending: list[str] = []
    original_add = hotpath._add

    def add_capture(result, name, fn, nbytes, repeat, warmup):
        _pending.append(name)
        original_add(result, name, fn, nbytes, repeat, warmup)

    hotpath._sample = capture
    hotpath._add = add_capture
    try:
        hotpath.run(scale=scale)
    finally:
        hotpath._sample = original
        hotpath._add = original_add
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", nargs="?",
                        help="hot-path row to profile (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="print available bench names and exit")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--limit", type=int, default=25,
                        help="rows of pstats output (default 25)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--out", help="also dump raw stats to this file")
    args = parser.parse_args(argv)

    rows = build_rows(args.scale)
    if args.list or not args.bench:
        print("hot-path benches:")
        for name in rows:
            print(f"  {name}")
        return 0 if args.list else 2
    fn = rows.get(args.bench)
    if fn is None:
        print(f"ERROR: unknown bench {args.bench!r}; "
              f"choose from {', '.join(rows)}", file=sys.stderr)
        return 2

    fn()  # warm caches/allocations outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort)
    print(f"== {args.bench} (scale={args.scale}, sort={args.sort}) ==")
    stats.print_stats(args.limit)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw stats written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
