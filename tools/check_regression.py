#!/usr/bin/env python3
"""Diff a ``fcae-bench --bench-json`` run against a committed baseline.

Stdlib-only so CI can call it without installing the package::

    python tools/check_regression.py \\
        --baseline benchmarks/baselines/BENCH_fig12.json \\
        --run BENCH_fig12.json [--rel-tol 0.05] [--abs-tol 1e-9]

Every experiment present in the baseline must exist in the run with the
same columns and row count; numeric cells must agree within the
tolerance band ``|run - base| <= abs_tol + rel_tol * |base|``,
non-numeric cells must match exactly.  The simulators are deterministic,
so the default band is tight; it exists to absorb floating-point
variation across Python versions, not to hide model drift.

``--perf`` switches to wall-clock mode for hot-path baselines
(``BENCH_hotpath.json``): only ``p50_us`` columns are compared, the
check is one-sided (only *slower* than baseline fails — being faster is
the point), and rows are matched by their first cell (the bench name)
so reordering or extra benches in the run never spuriously fail.  The
committed hot-path baseline records *seed* (pre-optimization) numbers,
so the gate catches a PR that gives the speedups back.

Exit status: 0 when everything is within tolerance (in particular, a run
diffed against itself), 1 on any drift, 2 on malformed inputs.
"""

from __future__ import annotations

import argparse
import json
import sys

SUPPORTED_SCHEMA = 1


def load(path: str) -> dict:
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != SUPPORTED_SCHEMA:
        raise ValueError(f"{path}: unsupported schema {doc.get('schema')!r}")
    if not isinstance(doc.get("experiments"), dict):
        raise ValueError(f"{path}: missing experiments table")
    return doc


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _duplicates(names: list) -> list:
    """Values appearing more than once, in first-seen order."""
    seen: set = set()
    dups: list = []
    for name in names:
        if name in seen and name not in dups:
            dups.append(name)
        seen.add(name)
    return dups


def _gates_nothing(baseline: dict) -> list[str]:
    """A baseline with no experiments (or only empty ones) would pass
    every run — fail loudly instead of green-lighting by omission."""
    if not baseline["experiments"]:
        return ["baseline has no experiments — it gates nothing"]
    return [f"{name}: baseline has no rows — it gates nothing"
            for name, exp in sorted(baseline["experiments"].items())
            if not exp.get("rows")]


def compare(baseline: dict, run: dict, rel_tol: float,
            abs_tol: float) -> list[str]:
    """All drifts of ``run`` against ``baseline``, as human-readable
    lines; empty means within tolerance."""
    drifts: list[str] = _gates_nothing(baseline)
    if drifts:
        return drifts
    if baseline.get("scale") != run.get("scale"):
        drifts.append(
            f"scale mismatch: baseline {baseline.get('scale')} vs run "
            f"{run.get('scale')} (results are scale-dependent)")
        return drifts

    for name, base_exp in sorted(baseline["experiments"].items()):
        run_exp = run["experiments"].get(name)
        if run_exp is None:
            drifts.append(f"{name}: missing from run")
            continue
        if base_exp["columns"] != run_exp["columns"]:
            drifts.append(f"{name}: column mismatch "
                          f"{base_exp['columns']} vs {run_exp['columns']}")
            continue
        base_rows, run_rows = base_exp["rows"], run_exp["rows"]
        if len(base_rows) != len(run_rows):
            drifts.append(f"{name}: {len(base_rows)} baseline rows vs "
                          f"{len(run_rows)} run rows")
            continue
        for row_no, (base_row, run_row) in enumerate(
                zip(base_rows, run_rows)):
            for col_no, (base_cell, run_cell) in enumerate(
                    zip(base_row, run_row)):
                column = base_exp["columns"][col_no]
                where = f"{name} row {row_no} [{column}]"
                if _is_number(base_cell) and _is_number(run_cell):
                    band = abs_tol + rel_tol * abs(base_cell)
                    if abs(run_cell - base_cell) > band:
                        drifts.append(
                            f"{where}: {run_cell!r} drifted from baseline "
                            f"{base_cell!r} (tolerance ±{band:g})")
                elif base_cell != run_cell:
                    drifts.append(
                        f"{where}: {run_cell!r} != baseline {base_cell!r}")
    return drifts


def compare_perf(baseline: dict, run: dict, rel_tol: float,
                 abs_tol: float) -> list[str]:
    """One-sided wall-clock comparison: each baseline row's ``p50_us``
    must not be exceeded by the matching run row (matched by bench
    name) beyond the tolerance band.  Faster is always fine."""
    drifts: list[str] = _gates_nothing(baseline)
    if drifts:
        return drifts
    if baseline.get("scale") != run.get("scale"):
        drifts.append(
            f"scale mismatch: baseline {baseline.get('scale')} vs run "
            f"{run.get('scale')} (wall times are scale-dependent)")
        return drifts

    for name, base_exp in sorted(baseline["experiments"].items()):
        run_exp = run["experiments"].get(name)
        if run_exp is None:
            drifts.append(f"{name}: missing from run")
            continue
        try:
            base_p50 = base_exp["columns"].index("p50_us")
            run_p50 = run_exp["columns"].index("p50_us")
        except ValueError:
            drifts.append(f"{name}: no p50_us column "
                          f"(not a hot-path experiment?)")
            continue
        # Duplicate bench names would silently shadow each other in the
        # name-keyed lookup below (last row wins) — a slow row hidden
        # behind a fast duplicate must fail, not skip.
        for dup in _duplicates([row[0] for row in base_exp["rows"]]):
            drifts.append(f"{name}/{dup}: duplicate bench name in "
                          f"baseline rows")
        for dup in _duplicates([row[0] for row in run_exp["rows"]]):
            drifts.append(f"{name}/{dup}: duplicate bench name in run "
                          f"rows (name-keyed matching would drop all "
                          f"but the last)")
        run_by_bench = {row[0]: row for row in run_exp["rows"]}
        for base_row in base_exp["rows"]:
            bench = base_row[0]
            run_row = run_by_bench.get(bench)
            if run_row is None:
                drifts.append(f"{name}/{bench}: missing from run")
                continue
            base_cell, run_cell = base_row[base_p50], run_row[run_p50]
            if not (_is_number(base_cell) and _is_number(run_cell)):
                drifts.append(f"{name}/{bench}: non-numeric p50_us "
                              f"({base_cell!r} vs {run_cell!r})")
                continue
            band = abs_tol + rel_tol * abs(base_cell)
            if run_cell > base_cell + band:
                drifts.append(
                    f"{name}/{bench}: p50 {run_cell}us slower than "
                    f"baseline {base_cell}us (allowed +{band:g}us)")
    return drifts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json baseline")
    parser.add_argument("--run", required=True,
                        help="BENCH_*.json from the current run")
    parser.add_argument("--rel-tol", type=float, default=0.05,
                        help="relative tolerance per numeric cell "
                             "(default 0.05)")
    parser.add_argument("--abs-tol", type=float, default=1e-9,
                        help="absolute tolerance per numeric cell "
                             "(default 1e-9)")
    parser.add_argument("--perf", action="store_true",
                        help="wall-clock mode: compare only p50_us, "
                             "one-sided (slower fails), rows matched by "
                             "bench name")
    args = parser.parse_args(argv)

    try:
        baseline = load(args.baseline)
        run = load(args.run)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2

    if args.perf:
        drifts = compare_perf(baseline, run, args.rel_tol, args.abs_tol)
    else:
        drifts = compare(baseline, run, args.rel_tol, args.abs_tol)
    if drifts:
        print(f"REGRESSION: {len(drifts)} drift(s) vs {args.baseline}",
              file=sys.stderr)
        for drift in drifts:
            print(f"  - {drift}", file=sys.stderr)
        return 1
    if args.perf:
        n_rows = sum(len(exp["rows"])
                     for exp in baseline["experiments"].values())
        print(f"OK: {args.run} p50 no slower than {args.baseline} "
              f"({n_rows} bench(es), rel_tol={args.rel_tol})")
        return 0
    n_cells = sum(len(exp["columns"]) * len(exp["rows"])
                  for exp in baseline["experiments"].values())
    print(f"OK: {args.run} within tolerance of {args.baseline} "
          f"({len(baseline['experiments'])} experiment(s), "
          f"{n_cells} cells, rel_tol={args.rel_tol}, "
          f"abs_tol={args.abs_tol})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
