"""Benchmark harness: every experiment regenerates with sane shapes."""

import pytest

from repro.bench import (
    ablation,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    table5,
    table6,
    table7,
    table8,
)
from repro.bench.cli import ALL_ORDER, EXPERIMENTS, main

SCALE = 0.05


class TestTable5:
    def test_grid_shape(self):
        result = table5.run(scale=0.2)
        assert len(result.rows) == 6
        assert result.columns[0] == "L_value"

    def test_cpu_column_matches_paper(self):
        result = table5.run(scale=0.2)
        for row_index in range(len(result.rows)):
            measured = result.cell(row_index, "CPU")
            paper = result.cell(row_index, "paper_CPU")
            assert paper * 0.7 < measured < paper * 1.3

    def test_fcae_within_2x_of_paper(self):
        result = table5.run(scale=0.5)
        for row_index, value_length in enumerate((64, 128, 256, 512,
                                                  1024, 2048)):
            measured = result.cell(row_index, "V=64")
            paper = table5.PAPER[value_length][4]
            assert paper * 0.5 < measured < paper * 2


class TestRatios:
    def test_fig9_ratios_grow_with_value_length(self):
        result = fig9.run(scale=0.2)
        v64 = result.column("V=64")
        assert v64[-1] > v64[0] > 1

    def test_fig9_max_in_paper_ballpark(self):
        result = fig9.run(scale=0.4)
        best = max(max(row[1:5]) for row in result.rows)
        assert 25 < best < 120  # paper headline: 92x

    def test_fig11_speedups_above_one(self):
        result = fig11.run(scale=SCALE)
        for row in result.rows:
            assert all(r > 1 for r in row[1:5])


class TestThroughputCurves:
    def test_fig10_baseline_declines(self):
        result = fig10.run(scale=0.25)
        base = result.column("LevelDB_MBps")
        assert base[-1] < base[0]

    def test_fig10_fcae_wins_everywhere(self):
        result = fig10.run(scale=0.25)
        assert all(row[2] > row[1] for row in result.rows)

    def test_table6_shape(self):
        result = table6.run(scale=SCALE)
        assert len(result.rows) == 6
        for row in result.rows:
            assert row[5] > row[1]  # V=64 beats baseline

    def test_fig14_speedup_band(self):
        result = fig14.run(scale=0.02)
        for row in result.rows:
            assert 1.5 < row[3] < 8.0

    def test_table8_single_digit_percentages(self):
        result = table8.run(scale=0.02)
        for row in result.rows:
            assert 0 < row[1] < 12


class TestHardwareTables:
    def test_table7_matches_paper_feasibility(self):
        result = table7.run()
        fits = {(row[0], row[1], row[2]): row[6] for row in result.rows}
        assert fits[(9, 8, 8)] is True
        assert fits[(9, 64, 8)] is False

    def test_fig12_gap_narrows(self):
        result = fig12.run(scale=0.2)
        ratios = result.column("9/2 ratio")
        assert ratios[-1] > ratios[0]
        assert all(r < 1 for r in ratios)

    def test_fig13_nine_input_ratio_competitive(self):
        result = fig13.run(scale=0.2)
        for row in result.rows[:3]:
            assert row[2] > row[1] * 0.9  # 9-input ratio at least close

    def test_ablation_full_is_fastest(self):
        result = ablation.run(scale=0.1)
        by_variant = {row[0]: row[1:] for row in result.rows}
        for column in range(3):
            assert (by_variant["full"][column]
                    > by_variant["basic"][column])


class TestSensitivity:
    def test_fig15a_decreasing(self):
        result = fig15.run_a(scale=SCALE)
        speedups = result.column("speedup")
        assert speedups[-1] < speedups[0]

    def test_fig15b_increasing(self):
        result = fig15.run_b(scale=SCALE)
        speedups = result.column("speedup")
        assert speedups[-1] > speedups[0]

    def test_fig15c_flat(self):
        result = fig15.run_c(scale=SCALE)
        speedups = result.column("speedup")
        assert max(speedups) < 1.5 * min(speedups)

    def test_summary_covers_four_sweeps(self):
        result = fig15.run(scale=SCALE)
        assert len(result.rows) == 4


class TestYcsbBench:
    def test_fig16_shapes(self):
        result = fig16.run(scale=0.1)
        speedup = {row[0]: row[3] for row in result.rows}
        assert speedup["c"] == pytest.approx(1.0, abs=0.02)
        assert speedup["load"] > 1.5
        assert all(s >= 0.97 for s in speedup.values())


class TestFsyncBench:
    def test_group_commit_beats_always_by_2x(self):
        from repro.bench import fsync
        from repro.lsm.options import WAL_SYNC_MODES

        result = fsync.run(scale=0.1)
        assert result.column("mode") == list(WAL_SYNC_MODES)
        by_mode = {row[0]: row for row in result.rows}
        # always pays one fsync per committed write.
        assert by_mode["always"][result.columns.index("wal_syncs")] == \
            by_mode["always"][result.columns.index("ops")]
        # The acceptance bar: >2x group-commit throughput at 8 writers.
        assert by_mode["group"][result.columns.index("vs_always")] > 2.0
        assert by_mode["group"][result.columns.index("avg_group")] > 1.0


class TestCli:
    def test_registry_complete(self):
        assert set(ALL_ORDER) <= set(EXPERIMENTS)

    def test_main_single_experiment(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "Table VII" in out

    def test_main_markdown_output(self, tmp_path, capsys):
        path = tmp_path / "out.md"
        assert main(["table7", "--markdown", str(path)]) == 0
        content = path.read_text()
        assert content.startswith("### Table VII")
