"""Unified observability: metrics registry, span tracing, exposition.

The paper's entire evaluation is internal measurement — per-phase
compaction time, the PCIe share of offload time, per-module FPGA
utilization, write-pause behavior.  This package is the telemetry
substrate those numbers flow through:

* :mod:`repro.obs.registry` — thread-safe counters / gauges /
  fixed-bucket histograms, grouped into named families;
* :mod:`repro.obs.names` — the canonical family table (``lsm_*``,
  ``scheduler_*``, ``fpga_pcie_*``, ``fpga_pipeline_*``) and binders;
* :mod:`repro.obs.tracing` — nested spans over wall-clock and simulated
  time, streamed as JSONL, with trace-context propagation across the
  async driver's thread boundaries;
* :mod:`repro.obs.events` — the flight recorder: an append-only JSONL
  event journal of flushes, compactions, stalls and faults, with a
  replay loader;
* :mod:`repro.obs.window` — sliding-window histograms for per-interval
  tail latency (p50/p95/p99/p999);
* :mod:`repro.obs.exposition` — Prometheus text format (and a parser);
* :mod:`repro.obs.report` — the LevelDB-style ``repro.stats`` /
  ``repro.levelstats`` properties;
* :mod:`repro.obs.slo` — declarative SLO specs, per-tenant error-budget
  accounting and multi-window burn-rate alerts over the journal;
* :mod:`repro.obs.dashboard` — the ``lsm top`` terminal dashboard
  rendered from registry snapshots;
* :mod:`repro.obs.timeline` — bounded-memory pipeline event intervals
  with Chrome trace-event export (Perfetto / ``chrome://tracing``);
* :mod:`repro.obs.profile` — critical-path attribution of kernel runs
  (which module bounds throughput) and the ``--profile`` report.

Instrumented components resolve their sinks in this order: an explicit
``metrics=`` / ``tracer=`` / ``events=`` constructor argument, then the
process-wide set installed by :func:`install` / :func:`scoped` (how the
benchmark CLIs aggregate a whole run into one dump), else a private
registry and the no-op tracer/journal.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    CallbackGauge,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    merge_counts,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    read_jsonl,
    span_children,
    spans_to_chrome_trace,
)
from repro.obs.events import (
    NULL_JOURNAL,
    EventJournal,
    JournalSummary,
    NullJournal,
    TeeJournal,
    read_events,
    replay,
    replay_file,
)
from repro.obs.window import (
    WindowedHistogram,
    publish_window,
    quantile_label,
)
from repro.obs.exposition import (
    parse_prometheus_text,
    to_prometheus_text,
    write_prometheus,
)
from repro.obs import names
from repro.obs.report import render_db_report, render_level_stats
from repro.obs.slo import (
    DEFAULT_POLICIES,
    BurnPolicy,
    SloEngine,
    SloSpec,
    WindowedCounter,
    build_engine,
    load_slo_file,
    parse_slo_specs,
    parse_slo_toml,
)
from repro.obs.dashboard import render_dashboard, run_dashboard
from repro.obs.timeline import TimelineRecorder

_installed_registry: Optional[MetricsRegistry] = None
_installed_tracer: Optional[Tracer] = None
_installed_timeline: Optional[TimelineRecorder] = None
_installed_events: Optional[EventJournal] = None


def install(registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None,
            timeline: Optional[TimelineRecorder] = None,
            events: Optional[EventJournal] = None) -> tuple:
    """Install process-wide defaults; returns a token for
    :func:`uninstall` (the previous tuple)."""
    global _installed_registry, _installed_tracer
    global _installed_timeline, _installed_events
    token = (_installed_registry, _installed_tracer, _installed_timeline,
             _installed_events)
    if registry is not None:
        _installed_registry = registry
    if tracer is not None:
        _installed_tracer = tracer
    if timeline is not None:
        _installed_timeline = timeline
    if events is not None:
        _installed_events = events
    return token


def uninstall(token: tuple = (None, None, None, None)) -> None:
    """Restore the defaults captured by :func:`install`."""
    global _installed_registry, _installed_tracer
    global _installed_timeline, _installed_events
    # Accept the historical shorter tokens for compatibility.
    registry, tracer = token[0], token[1]
    timeline = token[2] if len(token) > 2 else None
    events = token[3] if len(token) > 3 else None
    _installed_registry, _installed_tracer = registry, tracer
    _installed_timeline = timeline
    _installed_events = events


@contextmanager
def scoped(registry: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None,
           timeline: Optional[TimelineRecorder] = None,
           events: Optional[EventJournal] = None) -> Iterator[None]:
    """Temporarily install default sinks."""
    token = install(registry=registry, tracer=tracer, timeline=timeline,
                    events=events)
    try:
        yield
    finally:
        uninstall(token)


def current_registry() -> Optional[MetricsRegistry]:
    """The installed registry, or None (components then go private)."""
    return _installed_registry


def current_timeline() -> Optional[TimelineRecorder]:
    """The installed event timeline, or None (recording disabled)."""
    return _installed_timeline


def current_tracer() -> Tracer | NullTracer:
    """The installed tracer, or the shared no-op tracer."""
    return _installed_tracer if _installed_tracer is not None \
        else NULL_TRACER


def current_events() -> EventJournal | NullJournal:
    """The installed event journal, or the shared no-op journal."""
    return _installed_events if _installed_events is not None \
        else NULL_JOURNAL


def resolve_registry(metrics: Optional[MetricsRegistry]
                     ) -> MetricsRegistry:
    """Constructor helper: explicit argument > installed default > a
    fresh private registry."""
    if metrics is not None:
        return metrics
    installed = current_registry()
    return installed if installed is not None else MetricsRegistry()


def resolve_tracer(tracer) -> Tracer | NullTracer:
    """Constructor helper: explicit argument > installed default >
    no-op."""
    return tracer if tracer is not None else current_tracer()


def resolve_events(events) -> EventJournal | NullJournal:
    """Constructor helper: explicit argument > installed default >
    no-op."""
    return events if events is not None else current_events()


__all__ = [
    "BYTES_BUCKETS",
    "DEFAULT_POLICIES",
    "SECONDS_BUCKETS",
    "BurnPolicy",
    "CallbackGauge",
    "Counter",
    "EventJournal",
    "Exemplar",
    "Gauge",
    "Histogram",
    "JournalSummary",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_JOURNAL",
    "NULL_TRACER",
    "NullJournal",
    "NullTracer",
    "SloEngine",
    "SloSpec",
    "Span",
    "TeeJournal",
    "TimelineRecorder",
    "TraceContext",
    "Tracer",
    "WindowedCounter",
    "WindowedHistogram",
    "build_engine",
    "current_events",
    "current_registry",
    "current_timeline",
    "current_tracer",
    "install",
    "load_slo_file",
    "merge_counts",
    "names",
    "parse_prometheus_text",
    "parse_slo_specs",
    "parse_slo_toml",
    "publish_window",
    "quantile_label",
    "read_events",
    "read_jsonl",
    "render_dashboard",
    "render_db_report",
    "render_level_stats",
    "run_dashboard",
    "replay",
    "replay_file",
    "resolve_events",
    "resolve_registry",
    "resolve_tracer",
    "scoped",
    "span_children",
    "spans_to_chrome_trace",
    "to_prometheus_text",
    "uninstall",
    "write_prometheus",
]
