"""Analytic pipeline-period model — the paper's Tables II and III.

All periods are in cycles per key-value pair.  ``key_length`` here is the
*internal* key length: user key plus the 8-byte mark fields (the paper's
footnote: "L_key = 16 (real key length) + 8 (mark fields)").

Two families are provided:

* the *unoptimized* periods of Table II (values travel byte-serially), and
* the *optimized* periods of Table III (V-wide value paths),

plus the bottleneck predicate of §V-D1: the Data Block Decoder dominates
iff ``L_key < L_value / ((1 + ceil(log2 N)) * V)``; otherwise the Comparer
does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fpga.config import FpgaConfig
from repro.lsm.internal import MARK_FIELDS_SIZE


def internal_key_length(user_key_length: int) -> int:
    """``L_key`` as the hardware sees it: user key + mark fields."""
    return user_key_length + MARK_FIELDS_SIZE


def comparer_fanin_term(num_inputs: int) -> int:
    """``2 + ceil(log2 N)`` — read, compare-tree and existence check."""
    return 2 + math.ceil(math.log2(num_inputs))


# ----------------------------------------------------------------------
# Table II — before value-path widening (V = 1 effectively)
# ----------------------------------------------------------------------

def basic_decoder_period(key_length: int, value_length: int) -> float:
    """Data Block Decoder: decode key + read value byte-serially."""
    return key_length + value_length


def basic_transfer_period(key_length: int, value_length: int) -> float:
    """Key-Value Transfer: longer of the two serial streams."""
    return max(key_length, value_length)


# ----------------------------------------------------------------------
# Table III — optimized, V-wide value path
# ----------------------------------------------------------------------

def decoder_period(key_length: int, value_length: int,
                   value_width: int) -> float:
    """Data Block Decoder: ``L_key + L_value / V``."""
    return key_length + value_length / value_width


def comparer_period(key_length: int, num_inputs: int) -> float:
    """Comparer: ``(2 + ceil(log2 N)) * L_key``."""
    return comparer_fanin_term(num_inputs) * key_length


def transfer_period(key_length: int, value_length: int,
                    value_width: int) -> float:
    """Key-Value Transfer: ``max(L_key, L_value / V)``."""
    return max(key_length, value_length / value_width)


def encoder_period(key_length: int) -> float:
    """Data Block Encoder: ``L_key`` (values bypass re-encoding)."""
    return key_length


@dataclass(frozen=True)
class PeriodBreakdown:
    """Per-module periods for one (config, key, value) point."""

    decoder: float
    comparer: float
    transfer: float
    encoder: float

    @property
    def bottleneck_cycles(self) -> float:
        return max(self.decoder, self.comparer, self.transfer, self.encoder)

    @property
    def bottleneck_module(self) -> str:
        periods = {
            "decoder": self.decoder,
            "comparer": self.comparer,
            "transfer": self.transfer,
            "encoder": self.encoder,
        }
        return max(periods, key=periods.get)


def periods(config: FpgaConfig, key_length: int,
            value_length: int) -> PeriodBreakdown:
    """Table III for a configuration.  ``key_length`` is internal."""
    return PeriodBreakdown(
        decoder=decoder_period(key_length, value_length, config.value_width),
        comparer=comparer_period(key_length, config.num_inputs),
        transfer=transfer_period(key_length, value_length,
                                 config.value_width),
        encoder=encoder_period(key_length),
    )


def decoder_is_bottleneck(config: FpgaConfig, key_length: int,
                          value_length: int) -> bool:
    """§V-D1's simplified predicate:
    ``L_key < L_value / ((1 + ceil(log2 N)) * V)``."""
    fanin = math.ceil(math.log2(config.num_inputs))
    return key_length < value_length / ((1 + fanin) * config.value_width)


def steady_state_speed_mbps(config: FpgaConfig, user_key_length: int,
                            value_length: int,
                            pair_overhead_bytes: int = 4) -> float:
    """Idealized analytic throughput: pair bytes / bottleneck period.

    This is the upper bound the paper's analysis implies; the behavioral
    simulator's serialized value path (see :mod:`repro.fpga.pipeline_sim`)
    yields the lower, measurement-matching figure.
    """
    key_length = internal_key_length(user_key_length)
    breakdown = periods(config, key_length, value_length)
    pair_bytes = user_key_length + value_length + pair_overhead_bytes
    seconds = config.cycles_to_seconds(breakdown.bottleneck_cycles)
    return pair_bytes / seconds / 1e6


def serialized_pair_cycles(config: FpgaConfig, key_length: int,
                           value_length: int) -> float:
    """Calibrated per-pair service law of the behavioral model.

    Per pair, the engine (a) waits for the winning input's decode
    (overlapped with previous pairs, so it binds only when the decoder
    period exceeds the comparer's), (b) runs a Comparer round, then —
    because the value path is single-buffered — (c) serially moves the
    value through the Key-Value Transfer at ``V`` bytes/cycle and
    (d) drains it into the output buffer at ``output_buffer_width``
    bytes/cycle:

        max(decoder, comparer) + L_value/V + L_value/W_buf

    Fitted against the paper's Table V this reproduces all 24 measured
    cells within ~15% (see EXPERIMENTS.md).
    """
    breakdown = periods(config, key_length, value_length)
    serial_head = max(breakdown.decoder, breakdown.comparer)
    value_move = (value_length / config.value_width
                  + value_length / config.output_buffer_width)
    return serial_head + value_move


def serialized_speed_mbps(config: FpgaConfig, user_key_length: int,
                          value_length: int,
                          pair_overhead_bytes: int = 4) -> float:
    """Analytic closed form of the behavioral model's steady state."""
    key_length = internal_key_length(user_key_length)
    cycles = serialized_pair_cycles(config, key_length, value_length)
    pair_bytes = user_key_length + value_length + pair_overhead_bytes
    return pair_bytes / config.cycles_to_seconds(cycles) / 1e6


# ---------------------------------------------------------------------
# Backend wall-clock models (host-side routing)
# ---------------------------------------------------------------------
#
# The analytic models above price the *modeled hardware*; routing between
# host executors instead needs the wall time each backend will spend in
# this process.  All three backends fit the same affine law
#
#     seconds = fixed + pairs * per_pair + bytes * per_byte
#
# because each is a fixed setup (iterator/array marshalling) plus
# per-entry work (heap pops or array rows) plus per-byte work (copies,
# CRCs, block encoding).  Constants are calibrated against the
# ``bench backends`` sweep on the reference container; they only need to
# rank backends correctly, not predict absolute times.


@dataclass(frozen=True)
class WallCostModel:
    """Affine wall-clock estimate for one merge-compaction executor."""

    fixed_seconds: float
    per_pair_seconds: float
    per_byte_seconds: float

    def merge_seconds(self, input_bytes: int, num_pairs: int) -> float:
        return (self.fixed_seconds
                + num_pairs * self.per_pair_seconds
                + input_bytes * self.per_byte_seconds)


@dataclass(frozen=True)
class BatchCostModel:
    """Wall model of the LUDA-style batched merge (`repro.host.batch_merge`).

    The vectorized path pays a fixed marshalling cost (array allocation,
    lexsort setup) and then proceeds at a per-byte vectorized rate, with
    a small per-row term for the residual Python block/builder loops.
    The fallback constants describe the pure-Python chunked path used
    when numpy is absent — slightly worse than the streaming CPU merge,
    so cost-model routing never picks ``batch`` without numpy.
    """

    marshal_fixed_seconds: float = 2.5e-3
    per_pair_seconds: float = 3.6e-6
    per_byte_seconds: float = 12.0e-9
    fallback_fixed_seconds: float = 0.5e-3
    fallback_per_pair_seconds: float = 11.5e-6
    fallback_per_byte_seconds: float = 26.0e-9

    def merge_seconds(self, input_bytes: int, num_pairs: int,
                      vectorized: bool = True) -> float:
        if vectorized:
            return (self.marshal_fixed_seconds
                    + num_pairs * self.per_pair_seconds
                    + input_bytes * self.per_byte_seconds)
        return (self.fallback_fixed_seconds
                + num_pairs * self.fallback_per_pair_seconds
                + input_bytes * self.fallback_per_byte_seconds)


#: Streaming CPU merge (`repro.lsm.compaction.compact`): heap pop, parse
#: and builder add per pair, plus per-byte block/CRC work.
CPU_WALL_MODEL = WallCostModel(fixed_seconds=0.3e-3,
                               per_pair_seconds=10.7e-6,
                               per_byte_seconds=19.0e-9)

#: Pipeline-sim device (`repro.host.device.FcaeDevice`): the functional
#: merge plus the behavioral timing pass and DMA/marshal bookkeeping.
FPGA_SIM_WALL_MODEL = WallCostModel(fixed_seconds=2.0e-3,
                                    per_pair_seconds=14.0e-6,
                                    per_byte_seconds=22.0e-9)


def estimate_pairs(input_bytes: int, user_key_length: int,
                   value_length: int,
                   pair_overhead_bytes: int = 3) -> int:
    """Entries a compaction of ``input_bytes`` holds, from the workload's
    configured key/value lengths (block headers ~3 bytes/entry)."""
    pair_bytes = (internal_key_length(user_key_length) + value_length
                  + pair_overhead_bytes)
    return max(1, input_bytes // pair_bytes)
