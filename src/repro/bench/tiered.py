"""Extension bench: why the multi-input engine exists (§VII-C).

"In modern write-optimized LSM-tree based key-value stores, partitioned
tiering merge is adopted such as SifrDB or PebblesDB, which may allow
key range overlap in some levels ... N=2 is not enough for handling
these cases."

This target runs a *tiered* store (every merge takes a whole tier of ~8
overlapping runs) under three executors — software only, 2-input FCAE,
and 9-input FCAE — and reports throughput plus how many merges each
engine actually accepted.  The 2-input engine must reject essentially
every merge (input count > 2), collapsing to the software baseline; the
9-input engine offloads them all.
"""

from __future__ import annotations

from repro.bench.common import ExperimentResult, N9_CONFIG, scale_bytes
from repro.fpga.config import FpgaConfig
from repro.lsm.options import Options
from repro.sim.system import SystemConfig, simulate_fillrandom

DATA_SIZE = 1 << 30
VALUE_LENGTH = 512


def run(scale: float = 1.0) -> ExperimentResult:
    nbytes = scale_bytes(DATA_SIZE, scale)
    options = Options(value_length=VALUE_LENGTH)
    result = ExperimentResult(
        name="Tiered store",
        title="Lazy-compaction (tiered) store: who can accept the merges?",
        columns=["system", "throughput_MBps", "fpga_tasks", "sw_tasks",
                 "speedup_vs_sw"],
    )
    base = simulate_fillrandom(SystemConfig(
        mode="leveldb", options=options, data_size_bytes=nbytes,
        compaction_style="tiered"))
    result.add_row("software", base.throughput_mbps, 0,
                   base.software_tasks, 1.0)

    two = simulate_fillrandom(SystemConfig(
        mode="fcae", options=options, data_size_bytes=nbytes,
        compaction_style="tiered",
        fpga=FpgaConfig(num_inputs=2, value_width=16)))
    result.add_row("FCAE N=2", two.throughput_mbps, two.fpga_tasks,
                   two.software_tasks,
                   two.throughput_mbps / base.throughput_mbps)

    nine = simulate_fillrandom(SystemConfig(
        mode="fcae", options=options, data_size_bytes=nbytes,
        compaction_style="tiered", fpga=N9_CONFIG))
    result.add_row("FCAE N=9", nine.throughput_mbps, nine.fpga_tasks,
                   nine.software_tasks,
                   nine.throughput_mbps / base.throughput_mbps)

    result.notes.append(
        "tiered merges take a whole tier (~8 overlapping runs); the "
        "2-input engine must fall back to software for them, so only "
        "the multi-input engine pays off — the paper's §VII-C argument")
    return result
