"""Partitioned parallel sub-compactions.

A merge compaction is an order-preserving map over disjoint user-key
ranges: shadowing and tombstone dropping only ever relate versions of
*one* user key, so splitting the key space at user-key boundaries, merging
each partition independently, and splicing the survivor streams back in
key order reproduces the single-unit merge exactly.  The output tables
are built in one pass over the spliced stream, so the resulting images
are **byte-identical** to the unpartitioned path — same block cuts, same
table cuts, same checksums (tests assert file-content equality).

Partition boundaries come from the inputs' index blocks: every index
separator key is a cheap, already-materialized sample of the key
distribution, so picking evenly spaced separators yields partitions of
roughly equal data size without reading any data blocks (RocksDB's
sub-compaction file-boundary heuristic, and the key-range partitioning
LUDA applies to offloaded compaction).

Execution modes, selected by :class:`repro.lsm.options.Options`:

* ``max_subcompactions = 1`` — the classic single-unit streaming merge
  (this module is bypassed entirely);
* ``max_subcompactions > 1`` — partitions run serially, through a caller
  supplied ``mapper`` (:meth:`repro.host.driver.CompactionDriver.
  map_partitions` fans them out across the unit pool), or on a
  ``ProcessPoolExecutor`` when ``subcompaction_processes`` is set, which
  sidesteps the GIL for CPU-bound merges at the cost of shipping table
  images to the workers.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.lsm.compaction import (
    CompactionStats,
    build_output_tables,
    merge_entries,
)
from repro.lsm.internal import (
    InternalKeyComparator,
    MARK_FIELDS_SIZE,
    MAX_SEQUENCE,
    make_lookup_key,
)
from repro.lsm.iterator import KVPair
from repro.lsm.options import Options

#: Counter fields summed when partition stats are merged.
_STAT_FIELDS = ("input_pairs", "output_pairs", "dropped_shadowed",
                "dropped_tombstones", "input_bytes", "output_bytes")


def partition_boundaries(tables: Iterable, icmp: InternalKeyComparator,
                         max_partitions: int) -> list[bytes]:
    """Pick up to ``max_partitions - 1`` user-key boundaries from the
    tables' index blocks.

    Returns user keys in ascending order; partition ``i`` covers user
    keys in ``[boundaries[i-1], boundaries[i])`` (first/last ranges are
    open-ended).  Any user key is a *correct* boundary — index separators
    just make balanced ones — so callers never need to validate the
    choice, only its ordering.
    """
    if max_partitions <= 1:
        return []
    candidates = set()
    for table in tables:
        for separator, _ in table.index_entries():
            candidates.add(bytes(separator[:-MARK_FIELDS_SIZE]))
    import functools
    ucmp = icmp.user_comparator.compare
    ordered = sorted(candidates, key=functools.cmp_to_key(ucmp))
    if not ordered:
        return []
    count = min(max_partitions - 1, len(ordered))
    picks = []
    for i in range(1, count + 1):
        pick = ordered[(i * len(ordered)) // (count + 1)]
        if not picks or ucmp(picks[-1], pick) < 0:
            picks.append(pick)
    return picks


def _clipped(tables: list, icmp: InternalKeyComparator,
             start: Optional[bytes], end: Optional[bytes]) -> Iterator[KVPair]:
    """Entries of a sorted run of tables with user key in ``[start, end)``.

    ``start`` seeks through the index block (no scan of earlier blocks);
    ``end`` stops the whole run at the first entry past the range, which
    is valid because the concatenation of the tables is itself sorted.
    """
    ucmp = icmp.user_comparator.compare
    seek = None if start is None else make_lookup_key(start, MAX_SEQUENCE)
    for table in tables:
        entries = iter(table) if seek is None else table.iter_from(seek)
        for internal_key, value in entries:
            if (end is not None
                    and ucmp(internal_key[:-MARK_FIELDS_SIZE], end) >= 0):
                return
            yield internal_key, value


def range_sources(level: int, input_tables: list, parent_tables: list,
                  icmp: InternalKeyComparator, start: Optional[bytes],
                  end: Optional[bytes]) -> list[Iterator[KVPair]]:
    """``make_compaction_sources`` clipped to one partition's key range:
    level-0 files stay independent sources; sorted runs concatenate."""
    sources: list[Iterator[KVPair]] = []
    if level == 0:
        sources.extend(_clipped([t], icmp, start, end) for t in input_tables)
    elif input_tables:
        sources.append(_clipped(input_tables, icmp, start, end))
    if parent_tables:
        sources.append(_clipped(parent_tables, icmp, start, end))
    return sources


def merge_partition(level: int, input_tables: list, parent_tables: list,
                    icmp: InternalKeyComparator, drop_deletions: bool,
                    smallest_snapshot: Optional[int], start: Optional[bytes],
                    end: Optional[bytes],
                    stats: CompactionStats) -> list[KVPair]:
    """Merge + validity-check one partition, materializing its survivors
    (the splice needs every partition complete before encoding)."""
    sources = range_sources(level, input_tables, parent_tables, icmp,
                            start, end)
    return list(merge_entries(sources, icmp, drop_deletions, stats,
                              smallest_snapshot=smallest_snapshot))


def _merge_partition_images(level: int, input_images: list[bytes],
                            parent_images: list[bytes], options: Options,
                            drop_deletions: bool,
                            smallest_snapshot: Optional[int],
                            start: Optional[bytes], end: Optional[bytes]
                            ) -> tuple[list[KVPair], dict[str, int]]:
    """Process-pool worker: rebuild readers from raw images (TableReader
    is not picklable; images are) and merge one partition."""
    from repro.lsm.sstable import TableReader

    icmp = InternalKeyComparator(options.comparator)
    input_tables = [TableReader(img, icmp, options) for img in input_images]
    parent_tables = [TableReader(img, icmp, options) for img in parent_images]
    stats = CompactionStats()
    pairs = merge_partition(level, input_tables, parent_tables, icmp,
                            drop_deletions, smallest_snapshot, start, end,
                            stats)
    return pairs, {name: getattr(stats, name) for name in _STAT_FIELDS}


def _add_stats(total: CompactionStats, part: "CompactionStats | dict") -> None:
    for name in _STAT_FIELDS:
        value = (part[name] if isinstance(part, dict)
                 else getattr(part, name))
        setattr(total, name, getattr(total, name) + value)


def subcompact(level: int, input_tables: list, parent_tables: list,
               options: Options, icmp: InternalKeyComparator,
               drop_deletions: bool = False,
               smallest_snapshot: Optional[int] = None,
               mapper: Optional[Callable[[list], list]] = None
               ) -> CompactionStats:
    """Run a merge compaction as partitioned sub-compactions.

    Splits the key space into at most ``options.max_subcompactions``
    partitions, merges each (serially, via ``mapper``, or on a process
    pool per ``options.subcompaction_processes``), splices the survivor
    streams in key order and encodes the output tables in one pass —
    byte-identical to :func:`repro.lsm.compaction.compact` over the same
    tables.

    ``mapper`` takes a list of zero-argument callables and returns their
    results in order; the compaction driver passes its unit pool's map.
    """
    stats = CompactionStats()
    boundaries = partition_boundaries(
        list(input_tables) + list(parent_tables), icmp,
        options.max_subcompactions)
    ranges = list(zip([None] + boundaries, boundaries + [None]))

    if len(ranges) == 1:
        # One partition: keep the streaming pipeline, nothing to splice.
        survivors = merge_entries(
            range_sources(level, input_tables, parent_tables, icmp,
                          None, None),
            icmp, drop_deletions, stats,
            smallest_snapshot=smallest_snapshot)
        stats.outputs = build_output_tables(survivors, options, icmp)
        return stats

    if options.subcompaction_processes:
        from concurrent.futures import ProcessPoolExecutor

        input_images = [t.image for t in input_tables]
        parent_images = [t.image for t in parent_tables]
        workers = min(len(ranges), options.max_subcompactions)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_merge_partition_images, level, input_images,
                            parent_images, options, drop_deletions,
                            smallest_snapshot, start, end)
                for start, end in ranges
            ]
            parts = []
            for future in futures:
                pairs, part_stats = future.result()
                parts.append(pairs)
                _add_stats(stats, part_stats)
    else:
        def make_task(start, end):
            def task():
                part_stats = CompactionStats()
                pairs = merge_partition(level, input_tables, parent_tables,
                                        icmp, drop_deletions,
                                        smallest_snapshot, start, end,
                                        part_stats)
                return pairs, part_stats
            return task

        tasks = [make_task(start, end) for start, end in ranges]
        results = (mapper(tasks) if mapper is not None
                   else [task() for task in tasks])
        parts = []
        for pairs, part_stats in results:
            parts.append(pairs)
            _add_stats(stats, part_stats)

    def spliced() -> Iterator[KVPair]:
        for pairs in parts:
            yield from pairs

    stats.outputs = build_output_tables(spliced(), options, icmp)
    return stats
