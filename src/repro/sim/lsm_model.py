"""Statistical LSM shape model for the system simulator.

The discrete-event simulator cannot afford real SSTables at terabyte
scale, so levels are modelled statistically: each level holds ``bytes``
spread over files of ~``sstable_size``, uniformly covering the key space
(true for db_bench's random keys).  Compaction picking follows LevelDB
v1.1's rules — the same rules :class:`repro.lsm.version.VersionSet`
implements over real file metadata:

* level 0 compacts at ``L0_COMPACTION_TRIGGER`` files; all L0 files (they
  mutually overlap, each spanning the key space) plus the whole
  overlapping portion of L1 join;
* level i >= 1 compacts when its bytes exceed the ``leveling_ratio``
  budget; one file plus its expected key-range overlap of level i+1 —
  about ``ratio + 1`` files once the child level is populated — joins.

Survival fractions model the duplicate/tombstone shrink the Validity
Check performs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.lsm.options import (
    L0_COMPACTION_TRIGGER,
    L0_SLOWDOWN_TRIGGER,
    L0_STOP_TRIGGER,
    NUM_LEVELS,
    Options,
)


@dataclass
class ModelCompactionTask:
    """One merge compaction in the statistical model."""

    level: int
    input_bytes: int
    l0_files_consumed: int
    fpga_input_count: int
    output_bytes: int

    @property
    def output_level(self) -> int:
        return self.level + 1


@dataclass
class LevelModelStats:
    compactions: int = 0
    compaction_input_bytes: int = 0
    compaction_output_bytes: int = 0
    flushed_bytes: int = 0

    def write_amplification(self) -> float:
        """Compaction + flush bytes written per user byte flushed."""
        if self.flushed_bytes == 0:
            return 1.0
        return 1.0 + self.compaction_output_bytes / self.flushed_bytes


class LsmShapeModel:
    """Level byte/file accounting with LevelDB's trigger rules."""

    def __init__(self, options: Options,
                 l0_survival: float = 0.92,
                 deep_survival: float = 0.98):
        self.options = options
        self.l0_files = 0
        self.l0_bytes = 0
        self.level_bytes = [0] * NUM_LEVELS  # index 0 unused (l0_* above)
        self.l0_survival = l0_survival
        self.deep_survival = deep_survival
        self.stats = LevelModelStats()
        #: levels with a compaction in flight (prevents double-picking)
        self._busy_levels: set[int] = set()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_l0_file(self, nbytes: int) -> None:
        self.l0_files += 1
        self.l0_bytes += nbytes
        self.stats.flushed_bytes += nbytes

    # ------------------------------------------------------------------
    # Trigger queries
    # ------------------------------------------------------------------

    @property
    def slowdown(self) -> bool:
        return self.l0_files >= L0_SLOWDOWN_TRIGGER

    @property
    def stopped(self) -> bool:
        return self.l0_files >= L0_STOP_TRIGGER

    def compaction_score(self) -> tuple[float, int]:
        best_score = self.l0_files / float(L0_COMPACTION_TRIGGER)
        best_level = 0
        for level in range(1, NUM_LEVELS - 1):
            budget = self.options.max_bytes_for_level(level)
            score = self.level_bytes[level] / float(budget)
            if score > best_score:
                best_score = score
                best_level = level
        return best_score, best_level

    def needs_compaction(self) -> bool:
        score, level = self.compaction_score()
        return score >= 1.0 and level not in self._busy_levels

    # ------------------------------------------------------------------
    # Picking / applying
    # ------------------------------------------------------------------

    def pick_compaction(self) -> ModelCompactionTask | None:
        """Reserve the most urgent compaction, or ``None``.

        The chosen level is marked busy until :meth:`apply` (completion);
        the *inputs* are debited immediately so the same bytes are not
        picked twice, matching a real version set where inputs leave the
        pickable set once a job claims them.
        """
        score, level = self.compaction_score()
        if score < 1.0 or level in self._busy_levels:
            # A deeper non-busy level may still be over budget.
            candidate = self._fallback_level()
            if candidate is None:
                return None
            level = candidate
        task = self._build_task(level)
        if task is None:
            return None
        self._busy_levels.add(level)
        return task

    def _fallback_level(self) -> int | None:
        if (self.l0_files >= L0_COMPACTION_TRIGGER
                and 0 not in self._busy_levels):
            return 0
        for level in range(1, NUM_LEVELS - 1):
            if level in self._busy_levels:
                continue
            if self.level_bytes[level] > self.options.max_bytes_for_level(level):
                return level
        return None

    def _build_task(self, level: int) -> ModelCompactionTask | None:
        sstable = self.options.sstable_size
        if level == 0:
            if self.l0_files == 0:
                return None
            l0_files = self.l0_files
            l0_bytes = self.l0_bytes
            # Every L0 file spans the key space, so all of L1 overlaps.
            overlap = self.level_bytes[1]
            input_bytes = l0_bytes + overlap
            output_bytes = int(l0_bytes * self.l0_survival + overlap)
            self.l0_files = 0
            self.l0_bytes = 0
            self.level_bytes[1] -= overlap
            return ModelCompactionTask(
                level=0,
                input_bytes=input_bytes,
                l0_files_consumed=l0_files,
                fpga_input_count=l0_files + (1 if overlap else 0),
                output_bytes=output_bytes,
            )
        if self.level_bytes[level] < sstable:
            return None
        # Drain the level's excess in one job.  LevelDB picks one file per
        # compaction, but its round-robin pointer sweeps the whole excess
        # before the level shrinks below budget; batching the sweep into
        # one task keeps the event count tractable without changing the
        # bytes moved.
        budget = self.options.max_bytes_for_level(level)
        file_bytes = min(self.level_bytes[level],
                         max(sstable, self.level_bytes[level] - budget))
        # Expected overlap: the file covers file_bytes/level_bytes of the
        # key space; the child level holds child_bytes over that space.
        child = self.level_bytes[level + 1]
        coverage = file_bytes / max(1, self.level_bytes[level])
        overlap = min(child, int(coverage * child) + (sstable if child else 0))
        input_bytes = file_bytes + overlap
        output_bytes = int(input_bytes * self.deep_survival)
        self.level_bytes[level] -= file_bytes
        self.level_bytes[level + 1] -= overlap
        return ModelCompactionTask(
            level=level,
            input_bytes=input_bytes,
            l0_files_consumed=0,
            fpga_input_count=2 if overlap else 1,
            output_bytes=output_bytes,
        )

    def apply(self, task: ModelCompactionTask) -> None:
        """A compaction finished: credit its outputs."""
        if task.level not in self._busy_levels:
            raise SimulationError(
                f"apply for level {task.level} without a pending pick")
        self._busy_levels.discard(task.level)
        self.level_bytes[task.output_level] += task.output_bytes
        self.stats.compactions += 1
        self.stats.compaction_input_bytes += task.input_bytes
        self.stats.compaction_output_bytes += task.output_bytes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        return self.l0_bytes + sum(self.level_bytes)

    def populated_depth(self) -> int:
        """Deepest level holding data."""
        depth = 0
        for level in range(NUM_LEVELS - 1, 0, -1):
            if self.level_bytes[level] > 0:
                depth = level
                break
        return depth

    def expected_depth_for(self, total_bytes: int) -> int:
        """Levels a dataset of ``total_bytes`` will occupy."""
        level, budget = 1, self.options.max_level0_size
        remaining = total_bytes
        while remaining > budget and level < NUM_LEVELS - 1:
            remaining -= budget
            level += 1
            budget *= self.options.leveling_ratio
        return level


class TieredShapeModel:
    """Size-tiered / lazy-compaction shape (PebblesDB/SifrDB style).

    The paper's §VII-C motivation for the multi-input engine: modern
    write-optimized stores allow key-range overlap within a level, so a
    merge takes *all* of a level's runs at once — often 8+ inputs, which
    a 2-input engine cannot accept.

    Each level holds up to ``tier_fanout`` overlapping sorted runs; when
    a level fills, its runs merge into a single run on the next level
    (write amplification ~1 per crossing — tiering's selling point).
    Exposes the same interface as :class:`LsmShapeModel` so the system
    simulator can swap shapes.
    """

    def __init__(self, options: Options, tier_fanout: int = 8,
                 survival: float = 0.97):
        if tier_fanout < 2:
            raise SimulationError("tier_fanout must be >= 2")
        self.options = options
        self.tier_fanout = tier_fanout
        self.survival = survival
        self.runs: list[list[int]] = [[] for _ in range(NUM_LEVELS)]
        self.stats = LevelModelStats()
        self._busy_levels: set[int] = set()

    # -- ingestion ------------------------------------------------------

    def add_l0_file(self, nbytes: int) -> None:
        self.runs[0].append(nbytes)
        self.stats.flushed_bytes += nbytes

    @property
    def l0_files(self) -> int:
        return len(self.runs[0])

    @property
    def slowdown(self) -> bool:
        return len(self.runs[0]) >= L0_SLOWDOWN_TRIGGER

    @property
    def stopped(self) -> bool:
        return len(self.runs[0]) >= L0_STOP_TRIGGER

    # -- picking --------------------------------------------------------

    def _full_levels(self) -> list[int]:
        full = []
        for level in range(NUM_LEVELS - 1):
            threshold = (L0_COMPACTION_TRIGGER if level == 0
                         else self.tier_fanout)
            if (len(self.runs[level]) >= threshold
                    and level not in self._busy_levels):
                full.append(level)
        return full

    def needs_compaction(self) -> bool:
        return bool(self._full_levels())

    def pick_compaction(self) -> ModelCompactionTask | None:
        full = self._full_levels()
        if not full:
            return None
        level = full[0]  # shallowest first: relieves the write path
        run_count = len(self.runs[level])
        input_bytes = sum(self.runs[level])
        self.runs[level] = []
        task = ModelCompactionTask(
            level=level,
            input_bytes=input_bytes,
            l0_files_consumed=run_count if level == 0 else 0,
            fpga_input_count=run_count,
            output_bytes=int(input_bytes * self.survival),
        )
        self._busy_levels.add(level)
        return task

    def apply(self, task: ModelCompactionTask) -> None:
        if task.level not in self._busy_levels:
            raise SimulationError(
                f"apply for level {task.level} without a pending pick")
        self._busy_levels.discard(task.level)
        self.runs[task.output_level].append(task.output_bytes)
        self.stats.compactions += 1
        self.stats.compaction_input_bytes += task.input_bytes
        self.stats.compaction_output_bytes += task.output_bytes

    # -- introspection ----------------------------------------------------

    def total_bytes(self) -> int:
        return sum(sum(level) for level in self.runs)
