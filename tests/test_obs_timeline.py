"""Event timeline: recorder semantics, Chrome export, and pipeline /
host instrumentation stitching into one unified trace."""

import json

import pytest

from repro import obs
from repro.fpga.config import FpgaConfig
from repro.fpga.engine import simulate_synthetic
from repro.fpga.pipeline_sim import PipelineTimer
from repro.obs.timeline import TimelineRecorder


def config(**kwargs):
    defaults = dict(num_inputs=2, value_width=16, w_in=64, w_out=64)
    defaults.update(kwargs)
    return FpgaConfig(**defaults)


class TestRecorder:
    def test_interval_and_counter_recording(self):
        recorder = TimelineRecorder()
        recorder.interval("fpga", "comparer", "round", 0.0, 2.0,
                          {"winner": 1})
        recorder.counter("fpga", "fifo[0]", 2.0, 1)
        assert len(recorder) == 2
        assert recorder.intervals() == [
            ("fpga", "comparer", "round", 0.0, 2.0, {"winner": 1})]
        assert recorder.span_us() == (0.0, 2.0)

    def test_cursor_never_moves_backward(self):
        recorder = TimelineRecorder()
        recorder.advance_to(10.0)
        recorder.advance_to(5.0)
        assert recorder.cursor_us == 10.0

    def test_bounded_memory_drops_and_counts(self):
        recorder = TimelineRecorder(max_events=2)
        for i in range(5):
            recorder.interval("fpga", "t", "e", float(i), float(i + 1))
        assert len(recorder) == 2
        assert recorder.dropped_events == 3
        trace = recorder.to_chrome_trace()
        assert trace["otherData"]["dropped_events"] == 3

    def test_chrome_export_structure(self):
        recorder = TimelineRecorder()
        recorder.interval("fpga", "comparer", "round", 1.0, 3.0)
        recorder.interval("host", "pcie", "dma_in", 0.0, 1.0)
        recorder.counter("fpga", "fifo[0]", 3.0, 1)
        trace = recorder.to_chrome_trace()
        events = trace["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas
                if m["name"] == "process_name"} == {"fpga", "host"}
        assert {m["args"]["name"] for m in metas
                if m["name"] == "thread_name"} == {"comparer", "pcie"}
        xs = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["dma_in", "round"]  # ts-sorted
        counters = [e for e in events if e["ph"] == "C"]
        assert counters[0]["args"]["value"] == 1

    def test_write_chrome_trace_round_trips(self, tmp_path):
        recorder = TimelineRecorder()
        recorder.interval("fpga", "kernel", "kernel_run", 0.0, 5.0)
        path = str(tmp_path / "t.trace.json")
        recorder.write_chrome_trace(path)
        with open(path) as handle:
            trace = json.load(handle)
        assert any(e.get("name") == "kernel_run"
                   for e in trace["traceEvents"])


class TestPipelineInstrumentation:
    def run_with_timeline(self, **synthetic_kwargs):
        recorder = TimelineRecorder()
        cfg = synthetic_kwargs.pop("config", config())
        with obs.scoped(timeline=recorder):
            report = simulate_synthetic(
                cfg, synthetic_kwargs.pop("pairs", [200, 200]), 16, 256,
                **synthetic_kwargs)
        return recorder, report, cfg

    def test_tracks_per_module_and_input(self):
        recorder, _, _ = self.run_with_timeline()
        tracks = {(proc, track)
                  for proc, track, *_ in recorder.intervals()}
        assert ("fpga", "decoder[0]") in tracks
        assert ("fpga", "decoder[1]") in tracks
        for module in ("comparer", "value_bus", "encoder", "kernel"):
            assert ("fpga", module) in tracks

    def test_span_matches_total_cycles_within_1pct(self):
        recorder, report, cfg = self.run_with_timeline()
        first, last = recorder.span_us()
        expected_us = report.total_cycles / cfg.clock_mhz
        assert last - first == pytest.approx(expected_us, rel=0.01)

    def test_intervals_non_overlapping_within_each_track(self):
        recorder, _, _ = self.run_with_timeline()
        by_track = {}
        for proc, track, _, start, end, _ in recorder.intervals():
            by_track.setdefault((proc, track), []).append((start, end))
        for spans in by_track.values():
            spans.sort()
            for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
                assert next_start >= prev_end - 1e-9

    def test_consecutive_runs_share_one_contiguous_timeline(self):
        recorder = TimelineRecorder()
        cfg = config()
        with obs.scoped(timeline=recorder):
            simulate_synthetic(cfg, [50, 50], 16, 256)
            cursor_after_first = recorder.cursor_us
            simulate_synthetic(cfg, [50, 50], 16, 256)
        runs = recorder.intervals(track="kernel")
        assert len(runs) == 2
        assert runs[1][3] == pytest.approx(cursor_after_first)
        assert runs[1][3] >= runs[0][4] - 1e-9  # second starts after first

    def test_fifo_counter_bounded_by_depth(self):
        depth = 3
        recorder, _, _ = self.run_with_timeline(
            config=config(kv_fifo_depth=depth))
        trace = recorder.to_chrome_trace()
        samples = [e for e in trace["traceEvents"]
                   if e["ph"] == "C" and e["name"].startswith("fifo[")]
        assert samples
        assert all(0 <= e["args"]["value"] <= depth for e in samples)

    def test_zero_cost_when_disabled(self):
        timer = PipelineTimer(config())
        assert timer.timeline is None
        assert timer._profile_intervals is None
        timer.decode_pair(0, 24, 64)
        timer.comparer_round([0], 0, False, 24, 64)
        report = timer.finalize(100)
        assert report.attribution is None


class TestHostMerging:
    def test_device_phases_join_the_unified_trace(self, plain_options):
        from repro.host.device import FcaeDevice
        from repro.lsm.internal import InternalKeyComparator
        from repro.lsm.sstable import TableReader
        from repro.util.comparator import BytewiseComparator
        from tests.conftest import build_table_image, make_entries

        icmp = InternalKeyComparator(BytewiseComparator())

        def reader_for(entries):
            return TableReader(
                build_table_image(entries, plain_options, icmp),
                icmp, plain_options)

        inputs = [[reader_for(make_entries(80, seed=1, seq_base=10_000))],
                  [reader_for(make_entries(80, seed=2, seq_base=1))]]
        recorder = TimelineRecorder()
        with obs.scoped(timeline=recorder):
            device = FcaeDevice(config(), plain_options,
                                dram_size=1 << 26)
            device.compact(inputs)
        host_tracks = {track for _, track, *_ in
                       recorder.intervals(process="host")}
        assert host_tracks == {"scheduler", "pcie"}
        names = {name for _, _, name, *_ in
                 recorder.intervals(process="host")}
        assert names == {"marshal", "dma_in", "dma_out"}
        # marshal -> dma_in -> kernel -> dma_out ordering on one clock.
        (kernel,) = recorder.intervals(process="fpga", track="kernel")
        (dma_in,) = [i for i in recorder.intervals(process="host")
                     if i[2] == "dma_in"]
        (dma_out,) = [i for i in recorder.intervals(process="host")
                      if i[2] == "dma_out"]
        assert dma_in[4] <= kernel[3] + 1e-9   # dma_in ends before kernel
        assert dma_out[3] >= kernel[4] - 1e-9  # dma_out starts after
