"""Table VII + Figs 12/13: resources and multi-input engine."""

from repro.bench import fig12, fig13, table7


def test_bench_table7(benchmark, attach_rows):
    result = benchmark.pedantic(table7.run, rounds=3, iterations=1)
    attach_rows(benchmark, result)
    fits = {(row[0], row[1], row[2]): row[6] for row in result.rows}
    assert fits[(2, 64, 16)] and fits[(9, 8, 8)]
    assert not fits[(9, 64, 8)]


def test_bench_fig12(benchmark, attach_rows):
    result = benchmark.pedantic(fig12.run, kwargs={"scale": 0.25},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    ratios = result.column("9/2 ratio")
    assert ratios == sorted(ratios)  # gap narrows monotonically


def test_bench_fig13(benchmark, attach_rows):
    result = benchmark.pedantic(fig13.run, kwargs={"scale": 0.25},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    assert all(row[1] > 10 and row[2] > 10 for row in result.rows)
