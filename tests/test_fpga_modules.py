"""Functional pipeline modules: decoder chain, comparer, transfer,
encoders, stream adapters."""

import pytest

from repro.fpga.comparer import Comparer, KeyCompare, ValidityCheck
from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.decoder import DecoderChain, SSTableLayout
from repro.fpga.dram import Dram
from repro.fpga.encoder import Encoder
from repro.fpga.fifo import Fifo
from repro.fpga.stream import StreamDownsizer, StreamUpsizer
from repro.fpga.transfer import KeyValueTransfer
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.util.comparator import BytewiseComparator

from tests.conftest import build_table_image, make_entries

ICMP = InternalKeyComparator(BytewiseComparator())


def load_layout(image: bytes, plain_options):
    """Place an SSTable image + extracted index into a DRAM."""
    from repro.host.memory import extract_index_image
    from repro.lsm.sstable import TableReader

    reader = TableReader(image, ICMP, plain_options)
    index_image = extract_index_image(image, reader)
    dram = Dram(size=1 << 22)
    dram.write(0, image)
    dram.write(len(image) + 64, index_image)
    layout = SSTableLayout(index_offset=len(image) + 64,
                           index_size=len(index_image),
                           data_offset=0, data_size=len(image))
    return dram, layout


class TestDecoderChain:
    def test_decodes_all_pairs_in_order(self, plain_options):
        entries = make_entries(250, value_size=48)
        image = build_table_image(entries, plain_options, ICMP)
        dram, layout = load_layout(image, plain_options)
        chain = DecoderChain(dram, [layout],
                             FpgaConfig(), ICMP)
        decoded = [(p.internal_key, p.value) for p in chain]
        assert decoded == entries

    def test_new_block_flag_set_once_per_block(self, plain_options):
        entries = make_entries(250, value_size=48)
        image = build_table_image(entries, plain_options, ICMP)
        dram, layout = load_layout(image, plain_options)
        chain = DecoderChain(dram, [layout], FpgaConfig(), ICMP)
        pairs = list(chain)
        boundaries = sum(p.new_block for p in pairs)
        assert boundaries == chain.index_decoder.blocks_decoded
        assert boundaries > 1

    def test_unsorted_input_detected(self, plain_options):
        entries = make_entries(50)
        # Build a technically valid table, then corrupt ordering by
        # concatenating a table whose keys restart from the beginning.
        image = build_table_image(entries, plain_options, ICMP)
        dram, layout = load_layout(image, plain_options)
        chain = DecoderChain(dram, [layout, layout], FpgaConfig(), ICMP)
        from repro.errors import FpgaProtocolError
        with pytest.raises(FpgaProtocolError):
            list(chain)


class TestComparer:
    def test_key_compare_selects_smallest(self):
        compare = KeyCompare(ICMP)
        heads = {
            0: encode_internal_key(b"bbb", 5, TYPE_VALUE),
            1: encode_internal_key(b"aaa", 1, TYPE_VALUE),
            2: encode_internal_key(b"ccc", 9, TYPE_VALUE),
        }
        assert compare.select(heads) == 1
        assert compare.rounds == 1

    def test_key_compare_empty_raises(self):
        with pytest.raises(ValueError):
            KeyCompare(ICMP).select({})

    def test_validity_drops_shadowed(self):
        check = ValidityCheck(ICMP, drop_deletions=False)
        newer = encode_internal_key(b"k", 9, TYPE_VALUE)
        older = encode_internal_key(b"k", 3, TYPE_VALUE)
        assert check.check(newer) == (False, "keep")
        assert check.check(older) == (True, "shadowed")
        assert check.dropped_shadowed == 1

    def test_validity_drops_tombstone_at_bottom(self):
        check = ValidityCheck(ICMP, drop_deletions=True)
        tombstone = encode_internal_key(b"k", 9, TYPE_DELETION)
        assert check.check(tombstone) == (True, "tombstone")

    def test_validity_keeps_tombstone_mid_tree(self):
        check = ValidityCheck(ICMP, drop_deletions=False)
        tombstone = encode_internal_key(b"k", 9, TYPE_DELETION)
        assert check.check(tombstone) == (False, "keep")

    def test_composed_round(self):
        comparer = Comparer(ICMP, drop_deletions=True)
        heads = {
            0: encode_internal_key(b"a", 2, TYPE_VALUE),
            1: encode_internal_key(b"b", 1, TYPE_VALUE),
        }
        selection = comparer.round(heads)
        assert selection.input_no == 0
        assert not selection.drop


class TestTransfer:
    def test_pops_both_streams(self):
        transfer = KeyValueTransfer(FpgaConfig())
        keys, values = Fifo(2), Fifo(2)
        keys.push(b"key1")
        values.push(b"value1")
        result = transfer.execute(keys, values, drop=False)
        assert result.internal_key == b"key1"
        assert not result.dropped
        assert keys.is_empty and values.is_empty
        assert transfer.value_bytes_forwarded == 6

    def test_drop_discards(self):
        transfer = KeyValueTransfer(FpgaConfig())
        keys, values = Fifo(1), Fifo(1)
        keys.push(b"k")
        values.push(b"v")
        result = transfer.execute(keys, values, drop=True)
        assert result.dropped
        assert transfer.pairs_dropped == 1

    def test_service_cycles_by_variant(self):
        full = KeyValueTransfer(FpgaConfig(value_width=16))
        assert full.service_cycles(24, 1600) == 100.0
        basic = KeyValueTransfer(FpgaConfig(
            variant=PipelineVariant.BASIC))
        assert basic.service_cycles(24, 100) == 124.0


class TestEncoder:
    def test_builds_standard_tables(self, plain_options):
        encoder = Encoder(plain_options, ICMP, FpgaConfig())
        entries = make_entries(300, value_size=64)
        flushes = tables = 0
        for key, value in entries:
            events = encoder.add(key, value)
            flushes += events["block_flushed"]
            tables += events["table_completed"]
        outputs = encoder.finish()
        assert flushes >= len(outputs) >= 1
        assert sum(o.stats.num_entries for o in outputs) == 300
        # Outputs must parse as standard SSTables.
        from repro.lsm.sstable import TableReader
        recovered = []
        for output in outputs:
            recovered.extend(TableReader(output.data, ICMP, plain_options))
        assert recovered == entries

    def test_flush_cycles_scale_with_w_out(self):
        from repro.lsm.options import Options
        fast = Encoder(Options(), ICMP, FpgaConfig(w_out=64))
        assert fast.flush_cycles(4096) == 64.0


class TestStreamAdapters:
    def test_downsizer_rates(self):
        down = StreamDownsizer(64, 16)
        assert down.cycles_to_emit(4096) == 256
        assert down.cycles_to_ingest(4096) == 64
        assert down.cycles_to_emit(0) == 0

    def test_downsizer_rejects_widening(self):
        with pytest.raises(ValueError):
            StreamDownsizer(8, 16)

    def test_upsizer_rates(self):
        up = StreamUpsizer(8, 64)
        assert up.cycles_to_write(4096) == 64

    def test_upsizer_rejects_narrowing(self):
        with pytest.raises(ValueError):
            StreamUpsizer(64, 8)
