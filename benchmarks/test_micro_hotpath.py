"""Gated hot-path microbenchmarks: the overhaul's speedup floors.

Runs :mod:`repro.bench.hotpath` once and asserts each gated row's p50
against the committed *seed* (pre-optimization) baseline in
``benchmarks/baselines/BENCH_hotpath.json``:

* ``crc32c_4k``    — >= 3x faster than seed (sliced/table CRC32C)
* ``block_decode`` — >= 3x faster than seed (bulk zero-copy decode)
* ``cpu_merge_4way`` — >= 1.5x faster than seed (whole-path effect)

``batch_merge_4way`` is additionally gated *within the same run*: the
vectorized batched merge must beat the streaming CPU merge on the same
workload (skipped without numpy, where the batch engine degrades to the
chunked pure-python fallback).

Every other row only has to be *no slower* than seed (within noise).
The baseline file is the contract: re-baselining means deliberately
committing new numbers, not silently absorbing a regression.

These tests live in ``benchmarks/`` (excluded from the tier-1
``pytest`` run) because wall-clock gates belong in the perf-smoke lane,
not the functional one.  ``REPRO_HOTPATH_REPEAT``/``_WARMUP`` shrink
them for CI quick mode.
"""

import json
import pathlib

import pytest

from repro.bench import hotpath

BASELINE = (pathlib.Path(__file__).parent / "baselines"
            / "BENCH_hotpath.json")

#: bench name -> minimum speedup over the seed baseline p50.
SPEEDUP_FLOORS = {
    "crc32c_4k": 3.0,
    "block_decode": 3.0,
    "cpu_merge_4way": 1.5,
}
#: Ungated rows may be up to this much slower than seed before failing
#: (wall-clock noise allowance on a shared CI box).
NOISE_REL_TOL = 0.35

#: Same-run floor: the vectorized batched merge vs the streaming CPU
#: merge on the hotpath workload (~96 B values; the margin widens with
#: value size — see BENCH_backends.json).  Measured ~1.5x; gated at
#: 1.25x for shared-runner noise.
BATCH_MERGE_MIN_SPEEDUP = 1.25

#: The disabled flight-recorder's per-op residue (NullJournal call +
#: windows-off guard) must stay below this fraction of the bare put/get
#: loop — "near zero cost when observability is off".
OBS_DISABLED_MAX_FRACTION = 0.02
#: Enabled windows + journal may not slow the put/get loop by more than
#: this factor.
OBS_ENABLED_MAX_SLOWDOWN = 1.6


@pytest.fixture(scope="module")
def measured():
    doc = json.loads(BASELINE.read_text())
    assert doc["scale"] == 1.0, "baseline recorded at scale 1.0"
    base_exp = doc["experiments"]["hotpath"]
    p50_col = base_exp["columns"].index("p50_us")
    base = {row[0]: row[p50_col] for row in base_exp["rows"]}

    result = hotpath.run(scale=1.0)
    run_p50 = result.columns.index("p50_us")
    run = {row[0]: row[run_p50] for row in result.rows}
    return base, run


def test_baseline_covers_all_benches(measured):
    base, run = measured
    assert set(base) == set(run), (
        "bench set drifted from the committed baseline; re-baseline "
        "with: PYTHONPATH=src python -m repro.bench hotpath "
        "--bench-json benchmarks/baselines/BENCH_hotpath.json")


@pytest.mark.parametrize("bench,floor", sorted(SPEEDUP_FLOORS.items()))
def test_speedup_floor(measured, bench, floor):
    base, run = measured
    speedup = base[bench] / run[bench]
    assert speedup >= floor, (
        f"{bench}: {speedup:.2f}x over seed ({base[bench]}us -> "
        f"{run[bench]}us), floor is {floor}x")


def test_batch_merge_beats_cpu_merge(measured):
    from repro.host.batch_merge import BatchMergeEngine

    if not BatchMergeEngine(hotpath.OPTIONS, hotpath.ICMP).vectorized:
        pytest.skip("numpy absent: batch engine runs the pure-python "
                    "fallback, the floor gates the vectorized path")
    _, run = measured
    ratio = run["cpu_merge_4way"] / run["batch_merge_4way"]
    assert ratio >= BATCH_MERGE_MIN_SPEEDUP, (
        f"batch_merge_4way only {ratio:.2f}x faster than cpu_merge_4way "
        f"({run['cpu_merge_4way']}us vs {run['batch_merge_4way']}us), "
        f"floor is {BATCH_MERGE_MIN_SPEEDUP}x")


def test_obs_overhead_near_zero_when_disabled(measured):
    _, run = measured
    ceiling = max(OBS_DISABLED_MAX_FRACTION * run["obs_put_get_off"], 50.0)
    assert run["obs_overhead"] <= ceiling, (
        f"disabled-path obs residue {run['obs_overhead']}us exceeds "
        f"{ceiling:.0f}us ({OBS_DISABLED_MAX_FRACTION:.0%} of the bare "
        f"put/get loop at {run['obs_put_get_off']}us)")


def test_obs_enabled_cost_bounded(measured):
    _, run = measured
    slowdown = run["obs_put_get_on"] / run["obs_put_get_off"]
    assert slowdown <= OBS_ENABLED_MAX_SLOWDOWN, (
        f"windows+journal slow the put/get loop {slowdown:.2f}x "
        f"(bound {OBS_ENABLED_MAX_SLOWDOWN}x)")


def test_no_bench_slower_than_seed(measured):
    base, run = measured
    slower = {
        bench: (base[bench], run[bench])
        for bench in base
        if run[bench] > base[bench] * (1 + NOISE_REL_TOL)
    }
    assert not slower, f"rows regressed below seed performance: {slower}"
