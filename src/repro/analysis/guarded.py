"""Guarded-by contracts: which attributes need which mutex.

A contract is the Python analog of Clang's ``GUARDED_BY`` annotation
set for one class:

* ``mutex`` — the primary mutex as an attribute path relative to
  ``self`` (``("_mutex",)`` for ``LsmDB``, ``("db", "_mutex")`` for
  ``CompactionDriver``, which shares its DB's mutex).
* ``guards`` — attribute name -> mutex path that must be held to
  *mutate* it.
* ``guarded_reads`` — attributes whose *reads* must also be under the
  mutex (multi-word invariants, e.g. a dict resized concurrently).

Contracts come from three sources, merged in order:

1. The seeded registry below (the concurrent core of the repo).
2. ``# guarded_by: <mutex>`` trailing comments on ``self.X = ...``
   assignments in ``__init__`` (add ``, reads`` to also guard loads).
3. ``# mutex: <attr>`` on a class line, or auto-detection: a class
   whose ``__init__`` creates exactly one ``threading.Lock/RLock`` (or
   ``make_lock``/``make_rlock``) gets it as primary mutex.

``*_locked`` methods and ``# holds: <mutex>`` annotations declare that
a method runs with the mutex already held.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["ClassContract", "SEEDED_CONTRACTS", "build_contract"]

Path = Tuple[str, ...]

_GUARDED_RE = re.compile(
    r"#\s*guarded_by:\s*([A-Za-z_][\w.]*)\s*(?:,\s*(reads))?\s*$")
_MUTEX_RE = re.compile(r"#\s*mutex:\s*([A-Za-z_][\w.]*)")
_HOLDS_RE = re.compile(r"#\s*holds:\s*([A-Za-z_][\w.]*)")

_LOCK_FACTORIES = {"Lock", "RLock", "make_lock", "make_rlock"}


@dataclass
class ClassContract:
    name: str
    mutex: Optional[Path] = None
    guards: Dict[str, Path] = field(default_factory=dict)
    guarded_reads: Set[str] = field(default_factory=set)
    #: methods annotated ``# holds: <mutex>`` (beyond the ``*_locked``
    #: naming convention) -> the path they claim to hold
    holds_methods: Dict[str, Path] = field(default_factory=dict)
    #: every lock-like attribute path the class is known to use; a
    #: ``with`` on any of these counts as "holding" that path
    known_locks: Set[Path] = field(default_factory=set)
    #: condition-variable attrs that wrap another lock:
    #: ``self._cond = threading.Condition(self._mutex)`` makes holding
    #: ``_cond`` equivalent to holding ``_mutex``
    lock_aliases: Dict[Path, Path] = field(default_factory=dict)

    def lock_paths(self) -> Set[Path]:
        paths = set(self.known_locks)
        if self.mutex:
            paths.add(self.mutex)
        paths.update(self.guards.values())
        paths.update(self.lock_aliases)
        return paths

    def canonical(self, path: Path) -> Path:
        return self.lock_aliases.get(path, path)


def _path_from_text(text: str) -> Path:
    return tuple(text.split("."))


# Seeded for the concurrent core.  Attributes listed here are the ones
# multiple threads genuinely touch; single-owner fields stay free.
SEEDED_CONTRACTS: Dict[str, ClassContract] = {
    "LsmDB": ClassContract(
        name="LsmDB",
        mutex=("_mutex",),
        guards={
            "_mem": ("_mutex",),
            "_imm": ("_mutex",),
            "_writers": ("_mutex",),
            "_wal_writing": ("_mutex",),
            "_bg_error": ("_mutex",),
            "_snapshots": ("_mutex",),
            "_log": ("_mutex",),
            "_log_file": ("_mutex",),
            "_log_number": ("_mutex",),
            "_readers": ("_mutex",),
        },
    ),
    "CompactionDriver": ClassContract(
        name="CompactionDriver",
        mutex=("db", "_mutex"),
        guards={
            "_busy": ("db", "_mutex"),
            "_partition_pool": ("_pool_lock",),
        },
    ),
    "KVServer": ClassContract(
        name="KVServer",
        mutex=("_conns_lock",),
        guards={"_conns": ("_conns_lock",)},
    ),
    "ShardGate": ClassContract(
        name="ShardGate",
        mutex=("_lock",),
        guards={
            "_busy": ("_lock",),
            "_last_time": ("_lock",),
            "_last_stalled": ("_lock",),
            "rejections": ("_lock",),
        },
    ),
    "MetricsRegistry": ClassContract(
        name="MetricsRegistry",
        mutex=("_lock",),
        guards={"_families": ("_lock",)},
        guarded_reads={"_families"},
    ),
}


def _is_lock_factory_call(node: ast.expr) -> bool:
    """``threading.Lock()``, ``RLock()``, ``make_lock(...)`` etc."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _condition_wrapped_lock(node: ast.expr) -> Optional[Path]:
    """``threading.Condition(self.X)`` / ``make_condition(self.X, ...)``
    -> the wrapped lock's attribute path ``(X,)``."""
    if not (isinstance(node, ast.Call) and node.args):
        return None
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    if name not in ("Condition", "make_condition"):
        return None
    arg = node.args[0]
    parts: List[str] = []
    while isinstance(arg, ast.Attribute):
        parts.append(arg.attr)
        arg = arg.value
    if isinstance(arg, ast.Name) and arg.id == "self" and parts:
        return tuple(reversed(parts))
    return None


def build_contract(classdef: ast.ClassDef,
                   comments: Dict[int, List[str]]) -> ClassContract:
    """Merge the seeded contract (if any) with source annotations and
    auto-detected lock attributes for ``classdef``."""
    seeded = SEEDED_CONTRACTS.get(classdef.name)
    contract = ClassContract(
        name=classdef.name,
        mutex=seeded.mutex if seeded else None,
        guards=dict(seeded.guards) if seeded else {},
        guarded_reads=set(seeded.guarded_reads) if seeded else set(),
    )

    # class-line ``# mutex:`` annotation
    for text in comments.get(classdef.lineno, []):
        match = _MUTEX_RE.search(text)
        if match:
            contract.mutex = _path_from_text(match.group(1))

    detected_locks: List[str] = []
    for node in classdef.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # ``# holds:`` on the def line (or decorator-shifted line)
        for lineno in range(node.lineno,
                            node.body[0].lineno if node.body else
                            node.lineno + 1):
            for text in comments.get(lineno, []):
                match = _HOLDS_RE.search(text)
                if match:
                    contract.holds_methods[node.name] = (
                        _path_from_text(match.group(1)))
        if node.name != "__init__":
            continue
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                if _is_lock_factory_call(stmt.value):
                    detected_locks.append(attr)
                    contract.known_locks.add((attr,))
                wrapped = _condition_wrapped_lock(stmt.value)
                if wrapped is not None:
                    contract.lock_aliases[(attr,)] = wrapped
                for text in comments.get(stmt.lineno, []):
                    match = _GUARDED_RE.search(text)
                    if match:
                        contract.guards[attr] = (
                            _path_from_text(match.group(1)))
                        if match.group(2):
                            contract.guarded_reads.add(attr)

    if contract.mutex is None:
        if "_mutex" in detected_locks:
            contract.mutex = ("_mutex",)
        elif len(detected_locks) == 1:
            contract.mutex = (detected_locks[0],)
    return contract
