"""Fig 9 — acceleration ratio of 2-input FCAE over the CPU baseline.

Derived from the Table V grid: ratio(L_value, V) = FCAE / CPU.
"""

from __future__ import annotations

from repro.bench import table5
from repro.bench.common import VALUE_LENGTHS, VALUE_WIDTHS, ExperimentResult

PAPER_MAX_RATIO = 92.0  # the paper's headline (L=2048, V=64, vs 13.3 CPU)


def run(scale: float = 1.0) -> ExperimentResult:
    grid = table5.run(scale)
    result = ExperimentResult(
        name="Fig 9",
        title="FCAE acceleration ratio over CPU (2-input)",
        columns=["L_value", "V=8", "V=16", "V=32", "V=64", "paper_V=64"],
    )
    for row_index, value_length in enumerate(VALUE_LENGTHS):
        cpu_speed = grid.cell(row_index, "CPU")
        ratios = [grid.cell(row_index, f"V={v}") / cpu_speed
                  for v in VALUE_WIDTHS]
        paper = table5.PAPER[value_length]
        result.add_row(value_length, *ratios, paper[4] / paper[0])
    best = max(max(row[1:5]) for row in result.rows)
    result.notes.append(
        f"max measured ratio {best:.1f}x (paper reports up to "
        f"{PAPER_MAX_RATIO:.1f}x)")
    return result
