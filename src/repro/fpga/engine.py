"""The assembled FPGA compaction engine (FCAE).

:class:`CompactionEngine` wires N Decoder chains, the Comparer, the
Key-Value Transfer and the Encoders together.  A run is simultaneously

* **functional** — it consumes real SSTable images from device DRAM and
  produces real SSTable images, byte-compatible with the CPU compaction
  path (tests assert equality against :mod:`repro.lsm.compaction`), and
* **timed** — every event advances the :class:`PipelineTimer`, yielding
  the kernel cycle count that the paper's "compaction speed" metric
  (input bytes / kernel time) is computed from.

For parameter sweeps where materializing gigabytes of real input would
waste time, :func:`simulate_synthetic` replays a synthetic merge schedule
through the same :class:`PipelineTimer`, guaranteeing the benchmarks and
the functional engine share one timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FpgaResourceError
from repro.fpga.comparer import Comparer
from repro.fpga.config import FpgaConfig
from repro.fpga.decoder import DecoderChain, SSTableLayout
from repro.fpga.dram import Dram
from repro.fpga.encoder import Encoder
from repro.fpga.pipeline_sim import PipelineTimer, TimingReport, replay_rounds
from repro.fpga.resources import estimate_resources
from repro.fpga.transfer import KeyValueTransfer
from repro.lsm.compaction import OutputTable
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.options import Options
from repro.lsm.sstable import TableReader


@dataclass
class EngineResult:
    """Outcome of one kernel invocation."""

    outputs: list[OutputTable]
    timing: TimingReport
    config: FpgaConfig
    smallest_keys: list[bytes]
    largest_keys: list[bytes]

    @property
    def kernel_seconds(self) -> float:
        return self.timing.kernel_seconds(self.config)

    @property
    def compaction_speed_mbps(self) -> float:
        return self.timing.speed_mbps(self.config)


class _HeadCursor:
    """Functional lookahead of one decoded pair per input — the KV FIFO
    head the Comparer sees."""

    __slots__ = ("iterator", "head", "input_no")

    def __init__(self, iterator, input_no: int):
        self.iterator = iterator
        self.input_no = input_no
        self.head = None
        self.advance()

    def advance(self) -> None:
        try:
            self.head = next(self.iterator)
        except StopIteration:
            self.head = None


class CompactionEngine:
    """One instantiation of the hardware engine.

    Raises :class:`FpgaResourceError` at construction when the
    configuration does not fit the device (paper Table VII), unless
    ``check_resources=False``.
    """

    def __init__(self, config: FpgaConfig, options: Options | None = None,
                 check_resources: bool = True, metrics=None):
        self.config = config
        self.options = options or Options()
        self.comparator = InternalKeyComparator(self.options.comparator)
        #: optional repro.obs.MetricsRegistry for pipeline telemetry;
        #: None defers to the process-wide registry at run time.
        self.metrics = metrics
        if check_resources:
            report = estimate_resources(config)
            if not report.fits:
                raise FpgaResourceError(
                    f"configuration N={config.num_inputs}, "
                    f"W_in={config.w_in}, V={config.value_width} needs "
                    f"{report.lut_pct}% LUT / {report.ff_pct}% FF / "
                    f"{report.bram_pct}% BRAM")

    # ------------------------------------------------------------------
    # Functional + timed execution
    # ------------------------------------------------------------------

    def run(self, dram: Dram, inputs: list[list[SSTableLayout]],
            drop_deletions: bool = False) -> EngineResult:
        """Execute one compaction over device memory.

        ``inputs[i]`` lists input *i*'s SSTables in key order (a sorted
        level's files concatenate into one input, per §IV step 2).
        """
        if len(inputs) > self.config.num_inputs:
            raise FpgaResourceError(
                f"{len(inputs)} inputs exceed the engine's "
                f"N={self.config.num_inputs}")
        timer = PipelineTimer(self.config, metrics=self.metrics)
        comparer = Comparer(self.comparator, drop_deletions)
        transfer = KeyValueTransfer(self.config)
        encoder = Encoder(self.options, self.comparator, self.config)

        input_bytes = sum(t.index_size + t.data_size
                          for tables in inputs for t in tables)

        cursors = []
        for input_no, tables in enumerate(inputs):
            chain = DecoderChain(dram, tables, self.config, self.comparator)
            cursors.append(_HeadCursor(iter(chain), input_no))
        for cursor in cursors:
            if cursor.head is not None:
                _time_decode(timer, cursor.input_no, cursor.head)

        live = [c for c in cursors if c.head is not None]
        while len(live) > 1:
            heads = {c.input_no: c.head.internal_key for c in live}
            selection = comparer.round(heads)
            winner = next(c for c in live if c.input_no == selection.input_no)
            pair = winner.head
            timer.comparer_round(
                live_inputs=list(heads),
                winner=selection.input_no,
                drop=selection.drop,
                key_len=len(pair.internal_key),
                value_len=len(pair.value),
            )
            if selection.drop:
                transfer.pairs_dropped += 1
            else:
                transfer.pairs_forwarded += 1
                transfer.value_bytes_forwarded += len(pair.value)
                events = encoder.add(pair.internal_key, pair.value)
                if events["block_flushed"]:
                    timer.block_flush(events["block_bytes"])
            winner.advance()
            if winner.head is None:
                live = [c for c in live if c.input_no != winner.input_no]
            else:
                _time_decode(timer, winner.input_no, winner.head)
        if live:
            # Every remaining round has the same winner, so the timing
            # collapses to uniform runs the timer extrapolates in closed
            # form (see PipelineTimer.uniform_rounds).
            _drain_single_input(live[0], comparer, transfer, encoder, timer)

        outputs = encoder.finish()
        timing = timer.finalize(input_bytes)
        return EngineResult(
            outputs=outputs,
            timing=timing,
            config=self.config,
            smallest_keys=[o.smallest for o in outputs],
            largest_keys=[o.largest for o in outputs],
        )

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------

    def run_on_images(self, input_images: list[list[bytes]],
                      drop_deletions: bool = False) -> EngineResult:
        """Load raw SSTable images into a fresh DRAM and run.

        This splits each image into its index region and data region the
        way the host marshaller does (Fig 7), so tests can drive the
        engine without the full host layer.
        """
        dram = Dram(size=max(64 * 1024 * 1024, sum(
            len(img) for imgs in input_images for img in imgs) * 2 + 1024))
        offset = 0
        layouts: list[list[SSTableLayout]] = []
        for images in input_images:
            table_layouts = []
            for image in images:
                reader = TableReader(image, self.comparator, self.options)
                index_image = _extract_index_image(image, reader)
                dram.write(offset, image)
                data_offset = offset
                index_offset = offset + len(image)
                dram.write(index_offset, index_image)
                table_layouts.append(SSTableLayout(
                    index_offset=index_offset,
                    index_size=len(index_image),
                    data_offset=data_offset,
                    data_size=len(image),
                ))
                offset = index_offset + len(index_image)
                offset += (-offset) % self.config.w_in  # alignment
            layouts.append(table_layouts)
        return self.run(dram, layouts, drop_deletions)


def _time_decode(timer: PipelineTimer, input_no: int, pair) -> None:
    timer.decode_pair(
        input_no,
        key_len=len(pair.internal_key),
        value_len=len(pair.value),
        new_block=pair.new_block,
        block_compressed_size=pair.block_compressed_size,
    )


def _drain_single_input(cursor: _HeadCursor, comparer: Comparer,
                        transfer: KeyValueTransfer, encoder: Encoder,
                        timer: PipelineTimer) -> None:
    """Consume the last live input.

    The functional pass (validity check, encode, block cuts) runs first,
    recording each round's pair sizes, drop flag, flush bytes and refill
    decode; the timing replay then batches runs of identical rounds
    through the timer's closed-form fast path.  The replayed event
    sequence is exactly what the per-pair loop would have issued.
    """
    input_no = cursor.input_no
    rounds = []
    while cursor.head is not None:
        pair = cursor.head
        selection = comparer.round({input_no: pair.internal_key})
        flush_bytes = 0
        if selection.drop:
            transfer.pairs_dropped += 1
        else:
            transfer.pairs_forwarded += 1
            transfer.value_bytes_forwarded += len(pair.value)
            events = encoder.add(pair.internal_key, pair.value)
            if events["block_flushed"]:
                flush_bytes = events["block_bytes"]
        cursor.advance()
        nxt = cursor.head
        refill = (None if nxt is None else
                  (len(nxt.internal_key), len(nxt.value), nxt.new_block,
                   nxt.block_compressed_size))
        rounds.append((len(pair.internal_key), len(pair.value),
                       selection.drop, flush_bytes, refill))
    replay_rounds(timer, input_no, rounds)


def _extract_index_image(image: bytes, reader: TableReader) -> bytes:
    """Rebuild a standalone index block image from a table's index."""
    from repro.lsm.block import BlockBuilder

    builder = BlockBuilder(1)
    for key, handle in reader.index_entries():
        builder.add(key, handle.encode())
    return builder.finish()


def simulate_synthetic(config: FpgaConfig, pairs_per_input: list[int],
                       user_key_length: int, value_length: int,
                       block_size: int = 4096, drop_fraction: float = 0.0,
                       seed: int = 7) -> TimingReport:
    """Replay a synthetic merge through the shared timing model.

    Inputs are disjoint sorted runs of ``pairs_per_input[i]`` pairs with
    ``user_key_length``-byte keys (+8 mark bytes) and ``value_length``-
    byte values; winners interleave randomly (uniform key space) and a
    ``drop_fraction`` of selections are validity-Drop'd.  Used by the
    Table V / Figs 9, 12, 13 benchmarks for wide parameter sweeps.

    The run is traced as a synthetic ``compaction`` span with a modeled
    ``phase:kernel`` child, so benchmark traces carry the same span
    shape as full-stack offloads.
    """
    import random

    from repro import obs

    rng = random.Random(seed)
    key_len = user_key_length + 8
    pair_file_bytes = key_len + value_length + 4  # varint/restart overhead
    pairs_per_block = max(1, block_size // pair_file_bytes)

    timer = PipelineTimer(config)
    remaining = list(pairs_per_input)
    decoded = [0] * len(remaining)

    def feed(input_no: int) -> None:
        if decoded[input_no] < pairs_per_input[input_no]:
            new_block = decoded[input_no] % pairs_per_block == 0
            timer.decode_pair(input_no, key_len, value_length,
                              new_block=new_block,
                              block_compressed_size=block_size)
            decoded[input_no] += 1

    tracer = obs.current_tracer()
    with tracer.span("compaction", synthetic=True,
                     num_inputs=len(pairs_per_input),
                     key_length=user_key_length,
                     value_length=value_length) as span:
        for input_no in range(len(remaining)):
            feed(input_no)

        live = [i for i, n in enumerate(remaining) if n > 0]
        while len(live) > 1:
            winner = rng.choice(live)
            drop = rng.random() < drop_fraction
            timer.comparer_round(live, winner, drop, key_len, value_length)
            remaining[winner] -= 1
            feed(winner)
            if remaining[winner] == 0:
                live.remove(winner)
        if live:
            # Single-input tail: record the remaining rounds (consuming
            # the RNG exactly as the loop above would) and batch them
            # through the timer's closed-form fast path.
            winner = live[0]
            tail = []
            while remaining[winner] > 0:
                rng.choice(live)
                drop = rng.random() < drop_fraction
                remaining[winner] -= 1
                if decoded[winner] < pairs_per_input[winner]:
                    new_block = decoded[winner] % pairs_per_block == 0
                    refill = (key_len, value_length, new_block, block_size)
                    decoded[winner] += 1
                else:
                    refill = None
                tail.append((key_len, value_length, drop, 0, refill))
            replay_rounds(timer, winner, tail)

        input_bytes = sum(pairs_per_input) * pair_file_bytes
        report = timer.finalize(input_bytes)
        tracer.phase("phase:kernel", report.kernel_seconds(config),
                     cycles=report.total_cycles)
        span.set(input_bytes=input_bytes)
    return report
