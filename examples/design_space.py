#!/usr/bin/env python3
"""FPGA design-space exploration: what would you synthesize?

Walks the (N, W_in, V) space the paper's Table VII samples, marking each
configuration's resource feasibility on a KCU1500 and its predicted
kernel speed, then prints the best feasible configuration per input
count and the optimization-ladder ablation of §V.

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.engine import simulate_synthetic
from repro.fpga.resources import best_feasible_config, estimate_for

KEY_LENGTH = 16
VALUE_LENGTH = 512
PAIRS = 1500


def kernel_speed(config: FpgaConfig) -> float:
    report = simulate_synthetic(
        config, [PAIRS] * config.num_inputs, KEY_LENGTH, VALUE_LENGTH)
    return report.speed_mbps(config)


def main() -> None:
    print(f"kernel speeds at {KEY_LENGTH} B keys / {VALUE_LENGTH} B values, "
          f"200 MHz\n")
    print(f"{'N':>3} {'W_in':>5} {'V':>4}  {'LUT%':>6} {'FF%':>5} "
          f"{'BRAM%':>6}  {'fits':>5}  {'speed':>9}")
    for n in (2, 4, 9):
        for w_in in (64, 16, 8):
            for v in (16, 8):
                if v > w_in:
                    continue
                report = estimate_for(n, w_in, v)
                if report.fits:
                    config = FpgaConfig(num_inputs=n, value_width=v,
                                        w_in=w_in)
                    speed = f"{kernel_speed(config):7.1f}MB"
                else:
                    speed = "      --"
                print(f"{n:>3} {w_in:>5} {v:>4}  {report.lut_pct:>6.1f} "
                      f"{report.ff_pct:>5.1f} {report.bram_pct:>6.1f}  "
                      f"{str(report.fits):>5}  {speed:>9}")

    print("\nbest feasible configuration per input count:")
    for n in (2, 4, 9, 16):
        config = best_feasible_config(n)
        print(f"  N={n:>2}: W_in={config.w_in:>2}, V={config.value_width:>2} "
              f"-> {kernel_speed(config):7.1f} MB/s")

    print("\n§V optimization ladder (N=2, V=16):")
    base = FpgaConfig(num_inputs=2, value_width=16, w_in=64, w_out=64)
    previous = None
    for variant in (PipelineVariant.BASIC, PipelineVariant.SPLIT_BLOCKS,
                    PipelineVariant.KV_SEPARATION, PipelineVariant.FULL):
        speed = kernel_speed(replace(base, variant=variant))
        gain = ("" if previous is None
                else f"  ({speed / previous - 1:+.0%})")
        print(f"  {variant.value:>14}: {speed:7.1f} MB/s{gain}")
        previous = speed


if __name__ == "__main__":
    main()
