"""Sliding-window histograms: tail latency per interval, not per run.

The cumulative histograms in :mod:`repro.obs.registry` answer "what was
p99 over the whole run"; the auto-tuner and SLO accounting need "what is
p99 *right now*".  A :class:`WindowedHistogram` keeps a ring of
time-sliced fixed-bucket histograms over a clock (wall by default, a
simulated clock in the discrete-event simulators): observations land in
the slice covering ``now``, reads merge the slices still inside the
window, and slices older than the window are recycled in place — memory
is O(slices × buckets) regardless of rate.

Percentiles are computed from the merged cumulative bucket counts with
linear interpolation inside the winning bucket, so for a fixed window
content ``percentile(q)`` is monotone in ``q`` by construction.

:func:`publish_window` exposes selected quantiles as lazily-evaluated
registry gauges (:meth:`MetricsRegistry.callback_gauge`), so Prometheus
scrapes pay the merge cost, not the hot path.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

from collections import deque

from repro.errors import InvalidArgumentError
from repro.obs.registry import SECONDS_BUCKETS, Exemplar, MetricsRegistry

#: Quantiles published by default and their label values.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99, 0.999)

_QUANTILE_LABELS = {0.5: "p50", 0.95: "p95", 0.99: "p99", 0.999: "p999"}


def quantile_label(q: float) -> str:
    """``0.99 -> "p99"`` (falls back to ``p<percent>`` for odd values)."""
    label = _QUANTILE_LABELS.get(q)
    if label is not None:
        return label
    return "p" + f"{q * 100:g}".replace(".", "_")


class _Slice:
    """One time slice of the ring: bucket counts plus sum/count."""

    __slots__ = ("slot", "counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.slot = -1
        self.counts = [0] * (n_buckets + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def reset(self, slot: int) -> None:
        self.slot = slot
        for i in range(len(self.counts)):
            self.counts[i] = 0
        self.sum = 0.0
        self.count = 0


class WindowedHistogram:
    """Fixed-bucket histogram over a sliding time window.

    Parameters
    ----------
    window_seconds:
        Width of the window observations remain visible for.
    slices:
        Ring granularity; expiry resolution is ``window / slices``.
    buckets:
        Ascending upper bounds (defaults to the registry's
        ``SECONDS_BUCKETS``).
    clock:
        Callable returning seconds; defaults to ``time.monotonic``.
        Simulators pass a reader of their virtual clock so windows slide
        on modeled time.
    exemplar_threshold:
        Observations at or above this value that carry a ``trace_id``
        are retained as :class:`~repro.obs.registry.Exemplar` tail
        samples (bounded ring of the most recent
        ``exemplar_capacity``).  ``None`` keeps every traced
        observation; the threshold normally comes from an SLO spec.
    """

    def __init__(self, window_seconds: float = 60.0, slices: int = 6,
                 buckets: Optional[Sequence[float]] = None, clock=None,
                 exemplar_threshold: Optional[float] = None,
                 exemplar_capacity: int = 16):
        if window_seconds <= 0:
            raise InvalidArgumentError("window_seconds must be positive")
        if slices <= 0:
            raise InvalidArgumentError("slices must be positive")
        if exemplar_capacity <= 0:
            raise InvalidArgumentError("exemplar_capacity must be positive")
        self.window_seconds = float(window_seconds)
        self.buckets = tuple(buckets if buckets is not None
                             else SECONDS_BUCKETS)
        if any(b2 <= b1 for b1, b2 in zip(self.buckets, self.buckets[1:])):
            raise InvalidArgumentError("buckets must be strictly ascending")
        self._slice_seconds = self.window_seconds / slices
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._ring = [_Slice(len(self.buckets)) for _ in range(slices)]
        self.exemplar_threshold = exemplar_threshold
        self._exemplars: deque = deque(maxlen=exemplar_capacity)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _slice_for(self, slot: int) -> _Slice:
        entry = self._ring[slot % len(self._ring)]
        if entry.slot != slot:
            entry.reset(slot)
        return entry

    def observe(self, value: float,
                trace_id: Optional[str] = None) -> None:
        now = self._clock()
        slot = int(now / self._slice_seconds)
        index = self._bucket_index(value)
        with self._lock:
            entry = self._slice_for(slot)
            entry.counts[index] += 1
            entry.sum += value
            entry.count += 1
            if trace_id is not None and (
                    self.exemplar_threshold is None
                    or value >= self.exemplar_threshold):
                self._exemplars.append(Exemplar(value, trace_id, now))

    def exemplars(self) -> list[Exemplar]:
        """Most recent traced tail samples, oldest first."""
        with self._lock:
            return list(self._exemplars)

    def _bucket_index(self, value: float) -> int:
        # bisect over a short tuple; buckets are upper bounds (le).
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _live_slices(self) -> list[_Slice]:
        now_slot = int(self._clock() / self._slice_seconds)
        oldest = now_slot - len(self._ring) + 1
        return [entry for entry in self._ring
                if oldest <= entry.slot <= now_slot]

    def snapshot(self) -> tuple[list[int], float, int]:
        """Merged ``(bucket_counts, sum, count)`` of the live window."""
        with self._lock:
            merged = [0] * (len(self.buckets) + 1)
            total_sum, total_count = 0.0, 0
            for entry in self._live_slices():
                for i, n in enumerate(entry.counts):
                    merged[i] += n
                total_sum += entry.sum
                total_count += entry.count
        return merged, total_sum, total_count

    @property
    def count(self) -> int:
        return self.snapshot()[2]

    @property
    def sum(self) -> float:
        return self.snapshot()[1]

    def percentile(self, q: float) -> float:
        """Windowed quantile ``q`` in ``[0, 1]``; 0.0 when empty.

        Linear interpolation inside the winning bucket; observations in
        the overflow bucket report the largest finite bound."""
        if not 0.0 <= q <= 1.0:
            raise InvalidArgumentError(f"quantile {q} outside [0, 1]")
        counts, _, total = self.snapshot()
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for i, n in enumerate(counts):
            if n == 0:
                continue
            prev = running
            running += n
            if running >= rank:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i]
                fraction = (rank - prev) / n if n else 1.0
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]


def publish_window(registry: MetricsRegistry, name: str, help_text: str,
                   window: WindowedHistogram,
                   quantiles: Sequence[float] = DEFAULT_QUANTILES,
                   **labels) -> None:
    """Expose ``window``'s quantiles as callback gauges named ``name``
    with a ``quantile`` label (``p50``/``p95``/``p99``/``p999``).

    An *empty* window publishes no samples at all (the callbacks return
    ``None`` and exposition skips them) rather than a phantom 0.0, so
    dashboards and burn-rate math never mistake an idle period for a
    zero-latency one."""
    for q in quantiles:
        registry.callback_gauge(
            name, help_text,
            callback=lambda q=q: (window.percentile(q)
                                  if window.count else None),
            quantile=quantile_label(q), **labels)
