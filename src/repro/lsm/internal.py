"""Internal-key encoding.

An *internal key* is ``user_key || fixed64(sequence << 8 | type)``.  The
trailing 8 bytes are the paper's "mark fields": the monotonically increasing
sequence number that orders versions of the same user key, and a one-byte
value type distinguishing live values from deletion tombstones.  The FPGA
Comparer's Validity Check inspects exactly these fields.

Internal keys sort by user key ascending, then by sequence *descending*
(newest first), then by type descending — so a merge scan meets the newest
version of each user key first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CorruptionError
from repro.util.coding import decode_fixed64, encode_fixed64
from repro.util.comparator import BytewiseComparator, Comparator

#: A live key/value entry.
TYPE_VALUE = 0x1
#: A deletion tombstone.
TYPE_DELETION = 0x0

#: Sentinel used for lookups: sorts before every real type at a sequence.
VALUE_TYPE_FOR_SEEK = TYPE_VALUE

#: Sequence numbers occupy 56 bits.
MAX_SEQUENCE = (1 << 56) - 1

#: Size of the mark fields ("8 (mark fields)" in the paper's footnote).
MARK_FIELDS_SIZE = 8


def pack_sequence_and_type(sequence: int, value_type: int) -> int:
    """Combine sequence and type into the 64-bit trailer word."""
    if not 0 <= sequence <= MAX_SEQUENCE:
        raise CorruptionError(f"sequence out of range: {sequence}")
    if value_type not in (TYPE_VALUE, TYPE_DELETION):
        raise CorruptionError(f"invalid value type: {value_type}")
    return (sequence << 8) | value_type


def encode_internal_key(user_key: bytes, sequence: int, value_type: int) -> bytes:
    """Build the on-disk internal key for ``user_key``."""
    return user_key + encode_fixed64(pack_sequence_and_type(sequence, value_type))


@dataclass(frozen=True)
class ParsedInternalKey:
    """Decoded form of an internal key."""

    user_key: bytes
    sequence: int
    value_type: int

    @property
    def is_deletion(self) -> bool:
        return self.value_type == TYPE_DELETION


def parse_internal_key(internal_key: bytes) -> ParsedInternalKey:
    """Split an internal key into its components.

    Raises :class:`CorruptionError` if the key is too short or the type
    byte is unknown.
    """
    if len(internal_key) < MARK_FIELDS_SIZE:
        raise CorruptionError("internal key shorter than mark fields")
    trailer = decode_fixed64(internal_key, len(internal_key) - MARK_FIELDS_SIZE)
    value_type = trailer & 0xFF
    if value_type not in (TYPE_VALUE, TYPE_DELETION):
        raise CorruptionError(f"unknown value type byte {value_type:#x}")
    return ParsedInternalKey(
        user_key=internal_key[:-MARK_FIELDS_SIZE],
        sequence=trailer >> 8,
        value_type=value_type,
    )


def extract_user_key(internal_key: bytes) -> bytes:
    """Return the user-key prefix of an internal key (no validation of the
    type byte — use :func:`parse_internal_key` when that matters)."""
    if len(internal_key) < MARK_FIELDS_SIZE:
        raise CorruptionError("internal key shorter than mark fields")
    return internal_key[:-MARK_FIELDS_SIZE]


class InternalKeyComparator(Comparator):
    """Orders internal keys: user key asc, then sequence/type desc."""

    def __init__(self, user_comparator: Comparator):
        self.user_comparator = user_comparator
        # Bytewise user order lets compare() skip two dispatched calls on
        # the merge hot path; any other comparator takes the generic path.
        self._bytewise = type(user_comparator) is BytewiseComparator

    @property
    def name(self) -> str:
        return "leveldb.InternalKeyComparator"

    def compare(self, a: bytes, b: bytes) -> int:
        if len(a) < MARK_FIELDS_SIZE or len(b) < MARK_FIELDS_SIZE:
            raise CorruptionError("internal key shorter than mark fields")
        a_user = a[:-MARK_FIELDS_SIZE]
        b_user = b[:-MARK_FIELDS_SIZE]
        if self._bytewise:
            if a_user != b_user:
                return -1 if a_user < b_user else 1
        else:
            result = self.user_comparator.compare(a_user, b_user)
            if result != 0:
                return result
        a_trailer = decode_fixed64(a, len(a) - MARK_FIELDS_SIZE)
        b_trailer = decode_fixed64(b, len(b) - MARK_FIELDS_SIZE)
        if a_trailer > b_trailer:
            return -1
        if a_trailer < b_trailer:
            return 1
        return 0

    def find_shortest_separator(self, start: bytes, limit: bytes) -> bytes:
        user_start = extract_user_key(start)
        user_limit = extract_user_key(limit)
        tmp = self.user_comparator.find_shortest_separator(user_start, user_limit)
        if (len(tmp) < len(user_start)
                and self.user_comparator.compare(user_start, tmp) < 0):
            # A physically shorter separator exists; give it the maximum
            # possible trailer so it sorts before all entries of that key.
            tmp += encode_fixed64(
                pack_sequence_and_type(MAX_SEQUENCE, VALUE_TYPE_FOR_SEEK))
            return tmp
        return start

    def find_short_successor(self, key: bytes) -> bytes:
        user_key = extract_user_key(key)
        tmp = self.user_comparator.find_short_successor(user_key)
        if (len(tmp) < len(user_key)
                and self.user_comparator.compare(user_key, tmp) < 0):
            tmp += encode_fixed64(
                pack_sequence_and_type(MAX_SEQUENCE, VALUE_TYPE_FOR_SEEK))
            return tmp
        return key


def make_lookup_key(user_key: bytes, sequence: int) -> bytes:
    """Internal key that sorts at-or-before every entry of ``user_key``
    visible at snapshot ``sequence``."""
    return encode_internal_key(user_key, sequence, VALUE_TYPE_FOR_SEEK)
