"""PCIe transfer model.

The KCU1500 attaches over PCIe gen3 x16 (§VII-A): 15.75 GB/s raw, around
12 GB/s effective after TLP/DLLP framing.  DMA transfers additionally pay
a per-transfer setup cost (descriptor ring, doorbell, completion
interrupt).  Table VIII's observation — transfer time is a single-digit
percentage of system time, shrinking below 1% at scale — follows directly
from these two constants against the engine's ~1 GB/s kernel rate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PcieModel:
    """DMA timing over the host <-> card link."""

    #: Effective unidirectional bandwidth, bytes/second.
    bandwidth: float = 12e9
    #: Fixed DMA setup + completion cost per transfer, seconds.
    setup_seconds: float = 20e-6

    def transfer_breakdown(self, nbytes: int) -> tuple[float, float]:
        """``(setup_seconds, wire_seconds)`` of one DMA — the split the
        unified trace annotates each transfer with, so a timeline shows
        whether a slow DMA was setup-dominated (many small transfers) or
        bandwidth-dominated."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return (0.0, 0.0)
        return (self.setup_seconds, nbytes / self.bandwidth)

    def transfer_seconds(self, nbytes: int) -> float:
        """One DMA of ``nbytes`` (either direction)."""
        setup, wire = self.transfer_breakdown(nbytes)
        return setup + wire
