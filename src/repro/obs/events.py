"""Structured event journal — the flight recorder's black box.

LevelDB writes a human-oriented ``LOG`` file per database directory;
this module is the machine-readable analog: an append-only JSONL journal
of the store's maintenance lifecycle.  Each line is one event::

    {"v": 1, "seq": 12, "ts": 1723.4567, "type": "compaction_finish",
     "level": 1, "output_level": 2, "reason": "size", "backend": "fpga",
     "input_bytes": 4194304, "output_bytes": 4063232, ...}

Guarantees (enforced under one lock, asserted by
``tools/validate_events.py`` and the concurrency tests):

* ``seq`` is strictly increasing and gap-free;
* ``ts`` is monotonically non-decreasing (clamped against the clock
  running backwards across threads);
* every line is written with a single ``write()`` call, so concurrent
  emitters never tear lines.

Event types come in balanced start/finish pairs (``flush_*``,
``compaction_*``, ``stall_*``) plus point events (``fault``, ``retry``,
``fallback``, ``journal_open``, ``slo_alert``, ``exemplar``).  Finish
events for flushes and compactions carry the cumulative user
``write_bytes`` at that moment, so :func:`replay` can recompute
write-amplification without having seen the individual writes.

``fault``/``retry`` carry the ``backend`` that raised the injected
fault; ``fallback`` records the degradation pair (``source`` backend →
``target``, always ``cpu``) — the validator's strict mode requires both
fields.

``slo_alert`` records a burn-rate alert transition (fields: ``slo``,
``tenant``, ``policy``, ``state`` firing/resolved, ``burn_short``,
``burn_long``); ``exemplar`` records a tail sample whose trace id links
a latency violation back to the compaction/stall span that caused it
(fields: ``slo``, ``tenant``, ``trace``, ``value``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import IO, Optional

from repro.analysis import watchdog as lockwatch
from repro.errors import InvalidArgumentError

#: Journal schema version stamped on every line.
SCHEMA_VERSION = 1

#: Every event type the journal accepts.  Must stay equal to the
#: schema table in ``tools/validate_events.py`` — the analyzer's CT004
#: check enforces the equality in CI.
EVENT_TYPES = frozenset({
    "journal_open",
    "flush_start", "flush_finish",
    "compaction_start", "compaction_finish",
    "stall_start", "stall_finish",
    "fault", "retry", "fallback",
    "slo_alert", "exemplar",
    # Lock watchdog reports (repro.analysis.watchdog).
    "lock_cycle", "lock_long_hold",
})

#: ``start`` event type -> matching ``finish`` type.
PAIRED_TYPES = {
    "flush_start": "flush_finish",
    "compaction_start": "compaction_finish",
    "stall_start": "stall_finish",
}


class EventJournal:
    """Thread-safe, append-only emitter of journal events.

    Parameters
    ----------
    sink_path:
        File to append JSON lines to.  Opened in append mode — an
        existing journal is extended, never clobbered — and closed by
        :meth:`close`.
    sink:
        Any writable text handle the caller owns (an ``Env`` appendable
        file adapter, a ``StringIO`` in tests).  Not closed by
        :meth:`close`.
    clock:
        Callable returning seconds (defaults to ``time.time``); the
        simulators pass their virtual clock so journal timestamps live
        on the modeled timeline.
    keep_events:
        Retain emitted events in :attr:`events` for assertions
        (off by default to bound memory on long runs).
    """

    def __init__(self, sink_path: Optional[str] = None,
                 sink: Optional[IO[str]] = None, clock=None,
                 keep_events: bool = False):
        self._lock = lockwatch.make_lock("obs.journal")
        self._seq = 0
        self._last_ts = float("-inf")
        self._clock = clock if clock is not None else time.time
        self.keep_events = keep_events
        self.events: list[dict] = []
        self._owns_sink = sink_path is not None
        self._sink: Optional[IO[str]] = sink
        if sink_path is not None:
            self._sink = open(sink_path, "a")
        self.emit("journal_open")

    def emit(self, etype: str, **fields) -> dict:
        """Append one event; returns the record (with seq/ts filled in)."""
        if etype not in EVENT_TYPES:
            raise InvalidArgumentError(f"unknown event type {etype!r}")
        with self._lock:
            self._seq += 1
            ts = float(self._clock())
            if ts < self._last_ts:
                ts = self._last_ts
            self._last_ts = ts
            record = {"v": SCHEMA_VERSION, "seq": self._seq, "ts": ts,
                      "type": etype}
            record.update(fields)
            if self.keep_events:
                self.events.append(record)
            if self._sink is not None:
                # One write() per line: concurrent emitters cannot tear
                # lines even if the underlying stream is shared.
                self._sink.write(json.dumps(record) + "\n")
                flush = getattr(self._sink, "flush", None)
                if flush is not None:
                    flush()
        return record

    def close(self) -> None:
        with self._lock:
            if self._sink is not None and self._owns_sink:
                self._sink.close()
            self._sink = None


class NullJournal:
    """Do-nothing journal: the default so instrumented code pays one
    method call when the flight recorder is disabled."""

    keep_events = False
    events: list = []

    def emit(self, etype: str, **fields) -> dict:
        return {}

    def close(self) -> None:
        pass


NULL_JOURNAL = NullJournal()


class TeeJournal:
    """Fan one event stream out to several journals — e.g. the DB's own
    per-directory ``EVENTS.jsonl`` plus an installed ``--events-out``
    sink.  Each underlying journal keeps its own seq/ts discipline;
    :meth:`emit` returns the last journal's record.  Closing is the
    owners' job: the tee never closes what it did not open."""

    keep_events = False
    events: list = []

    def __init__(self, *journals):
        self.journals = tuple(j for j in journals if j is not None)

    def emit(self, etype: str, **fields) -> dict:
        record: dict = {}
        for journal in self.journals:
            record = journal.emit(etype, **fields)
        return record

    def close(self) -> None:
        pass


def read_events(path: str) -> list[dict]:
    """Load a journal file back into dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class JournalSummary:
    """Aggregate view of one journal, rebuilt by :func:`replay`.

    Per-level dicts are keyed by int level; ``level_write_bytes[L]`` is
    bytes installed *into* level L (flush output for L0, compaction
    output for deeper levels), matching the live
    ``lsm_level_write_bytes_total`` counters.
    """

    flushes: int = 0
    flush_bytes: int = 0
    compactions: int = 0
    compaction_input_bytes: int = 0
    compaction_output_bytes: int = 0
    level_write_bytes: dict = field(default_factory=dict)
    level_read_bytes: dict = field(default_factory=dict)
    compactions_by_level: dict = field(default_factory=dict)
    backends: dict = field(default_factory=dict)
    reasons: dict = field(default_factory=dict)
    stalls: int = 0
    stall_seconds: float = 0.0
    stall_reasons: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)
    retries: int = 0
    fallbacks: int = 0
    slo_alerts: dict = field(default_factory=dict)
    exemplars: int = 0
    write_bytes: int = 0
    unbalanced: dict = field(default_factory=dict)

    @property
    def write_amplification(self) -> float:
        """(flush + compaction output) / user bytes — same definition as
        ``DbStats.write_amplification``."""
        if self.write_bytes == 0:
            return 0.0
        return (self.flush_bytes + self.compaction_output_bytes) \
            / self.write_bytes

    def per_level_write_amp(self) -> dict:
        """{level: bytes written into level / user write bytes}."""
        if self.write_bytes == 0:
            return {level: 0.0 for level in self.level_write_bytes}
        return {level: nbytes / self.write_bytes
                for level, nbytes in sorted(self.level_write_bytes.items())}


def _bump(table: dict, key, amount=1) -> None:
    table[key] = table.get(key, 0) + amount


def replay(events: list[dict]) -> JournalSummary:
    """Fold a journal back into summary stats.

    Start events open a pending entry; finish events settle it.  Pairs
    left open (a crash mid-compaction) are reported in
    ``summary.unbalanced`` rather than silently dropped.
    """
    summary = JournalSummary()
    open_pairs: dict[str, int] = {}
    for event in events:
        etype = event.get("type")
        if etype in PAIRED_TYPES:
            _bump(open_pairs, PAIRED_TYPES[etype])
            continue
        if etype in PAIRED_TYPES.values():
            if open_pairs.get(etype, 0) > 0:
                open_pairs[etype] -= 1
            else:
                _bump(summary.unbalanced, etype)
        if etype == "flush_finish":
            summary.flushes += 1
            nbytes = int(event.get("bytes", 0))
            summary.flush_bytes += nbytes
            _bump(summary.level_write_bytes, 0, nbytes)
            summary.write_bytes = max(summary.write_bytes,
                                      int(event.get("write_bytes", 0)))
        elif etype == "compaction_finish":
            summary.compactions += 1
            level = int(event.get("level", 0))
            output_level = int(event.get("output_level", level + 1))
            input_bytes = int(event.get("input_bytes", 0))
            output_bytes = int(event.get("output_bytes", 0))
            summary.compaction_input_bytes += input_bytes
            summary.compaction_output_bytes += output_bytes
            _bump(summary.compactions_by_level, level)
            _bump(summary.level_write_bytes, output_level, output_bytes)
            _bump(summary.level_read_bytes, level,
                  int(event.get("input_bytes_base", input_bytes)))
            parent_bytes = int(event.get("input_bytes_parent", 0))
            if parent_bytes:
                _bump(summary.level_read_bytes, output_level, parent_bytes)
            _bump(summary.backends, event.get("backend", "unknown"))
            _bump(summary.reasons, event.get("reason", "unknown"))
            summary.write_bytes = max(summary.write_bytes,
                                      int(event.get("write_bytes", 0)))
        elif etype == "stall_finish":
            summary.stalls += 1
            summary.stall_seconds += float(event.get("seconds", 0.0))
            _bump(summary.stall_reasons, event.get("reason", "unknown"))
        elif etype == "fault":
            _bump(summary.faults, event.get("kind", "unknown"))
        elif etype == "retry":
            summary.retries += 1
        elif etype == "fallback":
            summary.fallbacks += 1
        elif etype == "slo_alert":
            _bump(summary.slo_alerts, event.get("state", "unknown"))
        elif etype == "exemplar":
            summary.exemplars += 1
    for finish_type, pending in open_pairs.items():
        if pending > 0:
            start_type = [s for s, f in PAIRED_TYPES.items()
                          if f == finish_type][0]
            _bump(summary.unbalanced, start_type, pending)
    return summary


def replay_file(path: str) -> JournalSummary:
    """Convenience: :func:`read_events` then :func:`replay`."""
    return replay(read_events(path))
