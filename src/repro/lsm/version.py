"""Leveled-version bookkeeping: which SSTables live in which level.

A :class:`Version` is an immutable snapshot of the level structure; the
:class:`VersionSet` owns the current version, applies
:class:`VersionEdit`\\ s produced by flushes and compactions, assigns file
numbers, and picks the next compaction the way LevelDB v1.1 does:

* level 0 compacts when it holds ``L0_COMPACTION_TRIGGER`` files (key
  ranges there may overlap, so *all* overlapping L0 files join);
* level i >= 1 compacts when its byte size exceeds
  ``Options.max_bytes_for_level``; one file is chosen round-robin by a
  per-level compaction pointer, plus every overlapping level-(i+1) file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import InvalidArgumentError
from repro.lsm.internal import InternalKeyComparator, extract_user_key
from repro.lsm.options import (
    L0_COMPACTION_TRIGGER,
    NUM_LEVELS,
    Options,
)


@dataclass(frozen=True)
class FileMetaData:
    """One on-disk SSTable."""

    number: int
    file_size: int
    smallest: bytes  # internal key
    largest: bytes   # internal key

    def user_range(self) -> tuple[bytes, bytes]:
        return extract_user_key(self.smallest), extract_user_key(self.largest)


@dataclass
class VersionEdit:
    """Delta between two versions."""

    added: list[tuple[int, FileMetaData]] = field(default_factory=list)
    deleted: list[tuple[int, int]] = field(default_factory=list)  # (level, number)

    def add_file(self, level: int, meta: FileMetaData) -> None:
        self.added.append((level, meta))

    def delete_file(self, level: int, number: int) -> None:
        self.deleted.append((level, number))


class Version:
    """Immutable snapshot of the level structure."""

    def __init__(self, comparator: InternalKeyComparator,
                 files: Optional[list[list[FileMetaData]]] = None):
        self.comparator = comparator
        self.files: list[list[FileMetaData]] = (
            files if files is not None else [[] for _ in range(NUM_LEVELS)])

    def num_files(self, level: int) -> int:
        return len(self.files[level])

    def level_bytes(self, level: int) -> int:
        return sum(f.file_size for f in self.files[level])

    def total_bytes(self) -> int:
        return sum(self.level_bytes(level) for level in range(NUM_LEVELS))

    def overlapping_files(self, level: int, smallest_user: Optional[bytes],
                          largest_user: Optional[bytes]) -> list[FileMetaData]:
        """Files in ``level`` whose user-key range intersects
        ``[smallest_user, largest_user]`` (``None`` = unbounded).

        For level 0 the search is *transitive*, like LevelDB: overlapping a
        file widens the range, because L0 files may overlap one another.
        """
        user_cmp = self.comparator.user_comparator
        result: list[FileMetaData] = []
        files = list(self.files[level])
        i = 0
        while i < len(files):
            meta = files[i]
            i += 1
            file_small, file_large = meta.user_range()
            if largest_user is not None and user_cmp.compare(
                    file_small, largest_user) > 0:
                continue
            if smallest_user is not None and user_cmp.compare(
                    file_large, smallest_user) < 0:
                continue
            result.append(meta)
            if level == 0:
                expanded = False
                if (smallest_user is not None
                        and user_cmp.compare(file_small, smallest_user) < 0):
                    smallest_user = file_small
                    expanded = True
                if (largest_user is not None
                        and user_cmp.compare(file_large, largest_user) > 0):
                    largest_user = file_large
                    expanded = True
                if expanded:
                    # Restart: the widened range may pull in earlier files.
                    result = []
                    i = 0
        return result

    def files_for_key(self, user_key: bytes) -> list[tuple[int, FileMetaData]]:
        """(level, file) pairs possibly containing ``user_key``, in
        newest-first search order: L0 newest→oldest, then deeper levels."""
        user_cmp = self.comparator.user_comparator
        result: list[tuple[int, FileMetaData]] = []
        level0 = [f for f in self.files[0]
                  if user_cmp.compare(f.user_range()[0], user_key) <= 0
                  and user_cmp.compare(user_key, f.user_range()[1]) <= 0]
        # Newer L0 files have larger file numbers.
        level0.sort(key=lambda f: f.number, reverse=True)
        result.extend((0, f) for f in level0)
        for level in range(1, NUM_LEVELS):
            for meta in self.files[level]:
                small, large = meta.user_range()
                if (user_cmp.compare(small, user_key) <= 0
                        and user_cmp.compare(user_key, large) <= 0):
                    result.append((level, meta))
                    break  # levels >= 1 are disjoint: at most one file
        return result


class VersionSet:
    """Owns the current :class:`Version` and drives compaction picking."""

    def __init__(self, options: Options, comparator: InternalKeyComparator):
        self.options = options
        self.comparator = comparator
        self.current = Version(comparator)
        self._next_file_number = 1
        self.compact_pointer: list[bytes] = [b""] * NUM_LEVELS
        self.last_sequence = 0

    def new_file_number(self) -> int:
        number = self._next_file_number
        self._next_file_number += 1
        return number

    @property
    def next_file_number(self) -> int:
        return self._next_file_number

    def reuse_file_number(self, number: int) -> None:
        """Advance the counter past externally recovered numbers."""
        self._next_file_number = max(self._next_file_number, number + 1)

    def apply(self, edit: VersionEdit) -> Version:
        """Produce and install a new current version."""
        deleted = set(edit.deleted)
        new_files: list[list[FileMetaData]] = []
        for level in range(NUM_LEVELS):
            keep = [f for f in self.current.files[level]
                    if (level, f.number) not in deleted]
            new_files.append(keep)
        for level, meta in edit.added:
            if not 0 <= level < NUM_LEVELS:
                raise InvalidArgumentError(f"bad level {level}")
            new_files[level].append(meta)
        for level in range(1, NUM_LEVELS):
            new_files[level].sort(
                key=lambda f: (f.smallest, f.number))
            self._check_disjoint(new_files[level], level)
        new_files[0].sort(key=lambda f: f.number)
        version = Version(self.comparator, new_files)
        self.current = version
        return version

    def _check_disjoint(self, files: list[FileMetaData], level: int) -> None:
        user_cmp = self.comparator.user_comparator
        for prev, cur in zip(files, files[1:]):
            if user_cmp.compare(prev.user_range()[1], cur.user_range()[0]) >= 0:
                raise InvalidArgumentError(
                    f"overlapping files in level {level}: "
                    f"#{prev.number} and #{cur.number}")

    # ------------------------------------------------------------------
    # Compaction picking
    # ------------------------------------------------------------------

    def compaction_score(self) -> tuple[float, int]:
        """(score, level) of the most urgent compaction; score >= 1 means
        a compaction is due."""
        best_score = (self.current.num_files(0)
                      / float(L0_COMPACTION_TRIGGER))
        best_level = 0
        for level in range(1, NUM_LEVELS - 1):
            score = (self.current.level_bytes(level)
                     / float(self.options.max_bytes_for_level(level)))
            if score > best_score:
                best_score = score
                best_level = level
        return best_score, best_level

    def needs_compaction(self) -> bool:
        score, _ = self.compaction_score()
        return score >= 1.0

    def pick_compaction(self, level: Optional[int] = None
                        ) -> Optional["CompactionSpec"]:
        """Choose inputs for the next merge compaction, or ``None``.

        With ``level`` the pick is forced to that level regardless of
        scores (the write path uses ``level=0`` to relieve an L0 stall —
        the most urgent compaction elsewhere may not touch L0 at all).
        """
        if level is None:
            score, level = self.compaction_score()
            if score < 1.0:
                return None
            reason = "files" if level == 0 else "size"
        elif not 0 <= level < NUM_LEVELS - 1:
            raise InvalidArgumentError(f"cannot compact level {level}")
        else:
            reason = f"forced_l{level}"
        version = self.current
        if level == 0:
            base = list(version.files[0])
        else:
            base = self._pick_round_robin(level)
        if not base:
            return None
        # Widen within the level so the chosen set covers a closed range.
        smallest, largest = self._key_range(base)
        base = version.overlapping_files(
            level, extract_user_key(smallest), extract_user_key(largest))
        smallest, largest = self._key_range(base)
        parents = version.overlapping_files(
            level + 1, extract_user_key(smallest), extract_user_key(largest))
        self.compact_pointer[level] = largest
        return CompactionSpec(level=level, inputs=base, parents=parents,
                              reason=reason)

    def _pick_round_robin(self, level: int) -> list[FileMetaData]:
        pointer = self.compact_pointer[level]
        for meta in self.current.files[level]:
            if not pointer or self.comparator.compare(meta.largest, pointer) > 0:
                return [meta]
        files = self.current.files[level]
        return [files[0]] if files else []

    def _key_range(self, files: list[FileMetaData]) -> tuple[bytes, bytes]:
        smallest = files[0].smallest
        largest = files[0].largest
        for meta in files[1:]:
            if self.comparator.compare(meta.smallest, smallest) < 0:
                smallest = meta.smallest
            if self.comparator.compare(meta.largest, largest) > 0:
                largest = meta.largest
        return smallest, largest

    def is_bottommost_level_for(self, spec: "CompactionSpec") -> bool:
        """True when no level below the output can contain the compacted
        key range — tombstones may then be dropped."""
        version = self.current
        smallest, largest = self._key_range(spec.inputs + spec.parents
                                            if spec.parents else spec.inputs)
        small_user = extract_user_key(smallest)
        large_user = extract_user_key(largest)
        for level in range(spec.level + 2, NUM_LEVELS):
            if version.overlapping_files(level, small_user, large_user):
                return False
        return True


@dataclass
class CompactionSpec:
    """Inputs of one merge compaction: ``inputs`` from ``level`` and
    ``parents`` from ``level + 1``; outputs land in ``level + 1``."""

    level: int
    inputs: list[FileMetaData]
    parents: list[FileMetaData]
    #: Why this compaction was picked: ``"files"`` (L0 file-count
    #: trigger), ``"size"`` (level over its byte budget) or
    #: ``"forced_l<N>"`` (explicit level request, e.g. L0-stall relief).
    reason: str = ""

    @property
    def output_level(self) -> int:
        return self.level + 1

    @property
    def total_input_files(self) -> int:
        return len(self.inputs) + len(self.parents)

    @property
    def total_input_bytes(self) -> int:
        return (sum(f.file_size for f in self.inputs)
                + sum(f.file_size for f in self.parents))

    def fpga_input_count(self) -> int:
        """Number of FPGA input streams this compaction needs.

        Per the paper's §IV step 2: level-0 files may mutually overlap, so
        each is its own input; sorted levels concatenate into one input.
        """
        if self.level == 0:
            return len(self.inputs) + (1 if self.parents else 0)
        return (1 if self.inputs else 0) + (1 if self.parents else 0)
